//! Delta product-BFS: incremental repair of cached RPQ answers under edge
//! insertion ([`delta_pairs`]) and edge deletion ([`deletion_repair`]).
//!
//! # Insertion
//!
//! RPQ answers are monotone under edge insertion, so maintaining a cached
//! answer only requires finding the pairs whose witnessing path *crosses the
//! new edge*.  Let the inserted edge be `u --a--> v` and fix a crossing:
//! the run of the query automaton reads `a` there, taking some transition
//! `q --a--> q'` (ε-closed).  The path therefore decomposes into
//!
//! * a prefix taking `(x, start)` to `(u, q)`, and
//! * a suffix taking `(v, q')` to some `(y, f)` with `f` final,
//!
//! both over the **updated** graph (so paths crossing the new edge more than
//! once are covered by splitting at any one crossing).  [`delta_pairs`]
//! materializes exactly this decomposition:
//!
//! * for each automaton state `q` with an `a`-transition, a *backward*
//!   product-BFS from `(u, q)` over the incoming CSR and the reversed
//!   ε-closed transition table collects the source set
//!   `B_q = {x | (x, start) →* (u, q)}`, and
//! * for each ε-closed successor `q'`, a *forward* product-BFS from
//!   `(v, q')` (memoized per `q'` — distinct `q` often share successors)
//!   collects the target set `F_{q'} = {y | (v, q') →* (y, final)}`;
//!
//! the union of the cross products `B_q × F_q` over all `a`-transitions is a
//! superset of the new pairs and a subset of the updated answer, so
//! extending the cached answer set with it is an exact repair.
//!
//! Each sweep is `O((V + E)·|Q|)`, and at most `|Q|` backward and `|Q|`
//! forward sweeps run per insertion — versus the `O(V·(V + E)·|Q|)` of
//! re-materializing from every source.
//!
//! # Deletion (DRed: over-delete, then re-derive)
//!
//! Deletion is **not** monotone: a pair survives an edge deletion iff *some*
//! witness avoids the deleted edge, so no purely local sweep can decide
//! which cached pairs to drop.  [`deletion_repair`] uses the classic
//! delete-and-rederive scheme, built from the same two observations:
//!
//! * **Over-deletion.**  Run [`delta_pairs`] for each deleted edge over the
//!   **pre-deletion** adjacencies.  The same prefix/crossing/suffix
//!   decomposition now reads: the result is exactly the set of cached pairs
//!   having *some* witness that crosses a deleted edge — a superset of the
//!   pairs that actually lost all their witnesses.  Removing it from the
//!   cached answer over-deletes.
//! * **Re-derivation.**  Every over-deleted pair `(x, y)` shares its source
//!   `x` with at most `V` other over-deleted pairs, and any pair not
//!   over-deleted is untouched (it kept a witness avoiding every deleted
//!   edge).  So one forward product-BFS per *affected source* over the
//!   **post-deletion** adjacency ([`graphdb::eval_csr_range`] restarted from
//!   `(x, start)`) re-derives exactly the survivors.
//!
//! Cost is `O(|deleted| · |Q| · (V+E) · |Q|)` for the over-deletion sweeps
//! plus `O(|affected sources| · (V+E) · |Q|)` for re-derivation — the full
//! re-materialization bound `O(V·(V+E)·|Q|)` is only approached when a
//! deletion touches witnesses of most sources.  The `engine` crate
//! additionally skips edges whose support count (parallel-edge multiplicity,
//! [`graphdb::GraphDb::edge_multiplicity`]) stays positive: deleting one
//! copy of a duplicated edge cannot change any answer.
//!
//! Under the writer/snapshot split the repair target is always a *uniquely
//! owned* answer set: the writer detaches each cached extension from any
//! published [`crate::EngineSnapshot`] (`Arc::make_mut`) before touching
//! it, so these sweeps never race a concurrent reader — readers keep the
//! pre-mutation extension their snapshot captured, including pairs the
//! writer has since over-deleted.

use std::collections::VecDeque;

use automata::{BitSet, DenseNfa, DenseReverse};
use graphdb::{
    eval_csr_range, eval_csr_range_budgeted, Answer, CsrAdjacency, EvalScratch, NodeId,
    ProductVisited, SweepBudget, SweepInterrupt, SweepState,
};

/// Shared scratch for the sweeps of one [`delta_pairs`] call: the
/// [`ProductVisited`] bitmap (reset between sweeps), the BFS queue, and a
/// node flag for deduplicating collected endpoints.
struct DeltaScratch {
    visited: ProductVisited,
    queue: VecDeque<(u32, u32)>,
    node_flag: Vec<bool>,
}

impl DeltaScratch {
    fn new(num_nodes: usize, nq: usize) -> Self {
        DeltaScratch {
            visited: ProductVisited::new(num_nodes, nq),
            queue: VecDeque::new(),
            node_flag: vec![false; num_nodes],
        }
    }

    #[inline]
    fn visit(&mut self, node: u32, state: u32) -> bool {
        self.visited.visit(node, state)
    }

    /// Unmarks everything visited by the last sweep, in O(visited).
    fn reset(&mut self) {
        self.visited.reset();
        self.queue.clear();
    }
}

/// The candidate new answer pairs of `query` created by inserting
/// `from --label--> to`, computed by backward/forward delta product-BFS over
/// the **updated** adjacencies.  The result may repeat pairs already in the
/// pre-insertion answer (the caller extends a set), but every returned pair
/// is in the updated answer and every genuinely new pair is returned.
///
/// `csr_out`/`csr_in` must be the outgoing/incoming CSR freezes of the same
/// updated database, and `rev` the reverse table of `query`.
pub fn delta_pairs(
    csr_out: &CsrAdjacency,
    csr_in: &CsrAdjacency,
    query: &DenseNfa,
    rev: &DenseReverse,
    from: NodeId,
    label: automata::Symbol,
    to: NodeId,
) -> Vec<(NodeId, NodeId)> {
    csr_out
        .domain()
        .check_compatible(query.alphabet())
        .expect("query automaton must be over the database domain");
    let nq = query.num_states().max(1);
    let num_nodes = csr_out.num_nodes();
    let sym = label.index();

    // Automaton states with an outgoing `label` transition; nothing to do if
    // the query never reads this label.
    let crossing: Vec<u32> = (0..query.num_states() as u32)
        .filter(|&q| !query.closed_successors(q, sym).is_empty())
        .collect();
    if crossing.is_empty() {
        return Vec::new();
    }

    let mut is_start = BitSet::new(nq);
    for &s in query.start() {
        is_start.insert(s);
    }

    let mut scratch = DeltaScratch::new(num_nodes, nq);
    // Forward target sets memoized per successor state q'.
    let mut forward_memo: Vec<Option<Vec<u32>>> = vec![None; nq];
    let mut out = Vec::new();
    let mut targets: Vec<u32> = Vec::new();

    for &q in &crossing {
        let sources = backward_sources(csr_in, rev, &is_start, from as u32, q, &mut scratch);
        if sources.is_empty() {
            continue;
        }
        // Fill the forward memo first (forward_targets owns the node flag
        // while it runs), then union the target sets, deduplicated through
        // the same flag.
        for &qp in query.closed_successors(q, sym) {
            if forward_memo[qp as usize].is_none() {
                forward_memo[qp as usize] =
                    Some(forward_targets(csr_out, query, to as u32, qp, &mut scratch));
            }
        }
        targets.clear();
        for &qp in query.closed_successors(q, sym) {
            for &y in forward_memo[qp as usize].as_ref().expect("just filled") {
                if !scratch.node_flag[y as usize] {
                    scratch.node_flag[y as usize] = true;
                    targets.push(y);
                }
            }
        }
        for &y in &targets {
            scratch.node_flag[y as usize] = false;
        }
        for &x in &sources {
            for &y in &targets {
                out.push((x as NodeId, y as NodeId));
            }
        }
    }
    out
}

/// Work counters of one [`deletion_repair`] call, folded into
/// [`crate::EngineStats`] by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeletionRepairReport {
    /// Pairs removed by the over-deletion phase (every pair with some
    /// pre-deletion witness crossing a deleted edge).
    pub overdeleted_pairs: u64,
    /// Distinct sources whose answers were re-derived by a forward
    /// product-BFS over the post-deletion graph.
    pub rederived_sources: u64,
}

/// Repairs a cached answer set in place after a batch of edge deletions,
/// DRed-style: over-delete every pair whose derivation may traverse a
/// deleted edge, then re-derive the survivors by restarting the forward
/// product-BFS from each affected source over the post-deletion graph (see
/// the module docs for why this is exact).
///
/// `old_csr_out`/`old_csr_in` must be freezes of the database **before** the
/// deletions, `new_csr_out` a freeze **after** them, `rev` the reverse table
/// of `query`, and `pairs` the cached answer valid on the pre-deletion
/// database.  `removed` lists the deleted edges; the caller is expected to
/// have pruned edges that still have support (surviving parallel copies),
/// which cannot change the answer and only widen the over-deletion.
pub fn deletion_repair(
    old_csr_out: &CsrAdjacency,
    old_csr_in: &CsrAdjacency,
    new_csr_out: &CsrAdjacency,
    query: &DenseNfa,
    rev: &DenseReverse,
    removed: &[(NodeId, automata::Symbol, NodeId)],
    pairs: &mut Answer,
) -> DeletionRepairReport {
    let mut report = DeletionRepairReport::default();

    // Phase 1 — over-delete: the delta sweeps on the *pre-deletion*
    // adjacencies enumerate every cached pair with a witness crossing a
    // deleted edge.  Candidates are collected first and removed in one
    // batched sweep — per-pair removal from the sorted-vector answer would
    // degrade to O(answer × candidates).
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
    for &(from, label, to) in removed {
        candidates.extend(delta_pairs(old_csr_out, old_csr_in, query, rev, from, label, to));
    }
    let overdeleted = pairs.remove_batch(&candidates);
    report.overdeleted_pairs = overdeleted.len() as u64;
    let mut affected_sources: Vec<NodeId> = overdeleted.into_iter().map(|(x, _)| x).collect();
    if affected_sources.is_empty() {
        return report; // no witness crossed any deleted edge
    }

    // Phase 2 — re-derive: one forward product-BFS per affected source over
    // the post-deletion graph restores exactly the over-deleted pairs that
    // still have a witness.
    affected_sources.sort_unstable();
    affected_sources.dedup();
    report.rederived_sources = affected_sources.len() as u64;
    let mut scratch = EvalScratch::new(new_csr_out, query);
    let mut rederived: Vec<(u32, u32)> = Vec::new();
    for &source in &affected_sources {
        let source = source as u32;
        eval_csr_range(new_csr_out, query, source..source + 1, &mut scratch, &mut rederived);
    }
    pairs.extend(rederived.into_iter().map(|(x, y)| (x as NodeId, y as NodeId)));
    report
}

/// Budgeted variant of [`deletion_repair`]: the time-like limits are polled
/// between over-deletion sweeps (one per removed edge) and the re-derivation
/// sweeps are budgeted cooperatively per [`graphdb::SWEEP_CHECK_INTERVAL`]
/// pops.
///
/// On interrupt `pairs` is left **partially repaired** (some pairs
/// over-deleted but not yet re-derived) and must be discarded by the caller
/// — the engine drops the view's cached extension and re-materializes it on
/// next use.  The mutation itself is already applied at this point; only the
/// cache repair degrades.
// Three adjacency views (old out/in, new out) plus the budget pair are all
// borrowed per-call state with different lifetimes/owners; bundling them
// into a struct would only move the argument list into a constructor.
#[allow(clippy::too_many_arguments)]
pub fn deletion_repair_budgeted(
    old_csr_out: &CsrAdjacency,
    old_csr_in: &CsrAdjacency,
    new_csr_out: &CsrAdjacency,
    query: &DenseNfa,
    rev: &DenseReverse,
    removed: &[(NodeId, automata::Symbol, NodeId)],
    pairs: &mut Answer,
    budget: &SweepBudget,
    progress: &SweepState,
) -> Result<DeletionRepairReport, SweepInterrupt> {
    let mut report = DeletionRepairReport::default();

    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
    for &(from, label, to) in removed {
        progress.poll(budget)?;
        candidates.extend(delta_pairs(old_csr_out, old_csr_in, query, rev, from, label, to));
    }
    let overdeleted = pairs.remove_batch(&candidates);
    report.overdeleted_pairs = overdeleted.len() as u64;
    let mut affected_sources: Vec<NodeId> = overdeleted.into_iter().map(|(x, _)| x).collect();
    if affected_sources.is_empty() {
        return Ok(report);
    }

    affected_sources.sort_unstable();
    affected_sources.dedup();
    report.rederived_sources = affected_sources.len() as u64;
    let mut scratch = EvalScratch::new(new_csr_out, query);
    let mut rederived: Vec<(u32, u32)> = Vec::new();
    for &source in &affected_sources {
        let source = source as u32;
        eval_csr_range_budgeted(
            new_csr_out,
            query,
            source..source + 1,
            &mut scratch,
            &mut rederived,
            budget,
            progress,
        )?;
    }
    pairs.extend(rederived.into_iter().map(|(x, y)| (x as NodeId, y as NodeId)));
    Ok(report)
}

/// Backward sweep: the sources `x` with `(x, start) →* (node, state)`,
/// walking incoming edges and reversed ε-closed transitions.
fn backward_sources(
    csr_in: &CsrAdjacency,
    rev: &DenseReverse,
    is_start: &BitSet,
    node: u32,
    state: u32,
    scratch: &mut DeltaScratch,
) -> Vec<u32> {
    let mut sources = Vec::new();
    scratch.visit(node, state);
    scratch.queue.push_back((node, state));
    if is_start.contains(state) && !scratch.node_flag[node as usize] {
        scratch.node_flag[node as usize] = true;
        sources.push(node);
    }
    while let Some((x, s)) = scratch.queue.pop_front() {
        for (a, w) in csr_in.edges_from(x) {
            for &p in rev.closed_predecessors(s, a as usize) {
                if scratch.visit(w, p) {
                    scratch.queue.push_back((w, p));
                    if is_start.contains(p) && !scratch.node_flag[w as usize] {
                        scratch.node_flag[w as usize] = true;
                        sources.push(w);
                    }
                }
            }
        }
    }
    for &x in &sources {
        scratch.node_flag[x as usize] = false;
    }
    scratch.reset();
    sources
}

/// Forward sweep: the targets `y` with `(node, state) →* (y, f)`, `f` final.
fn forward_targets(
    csr_out: &CsrAdjacency,
    query: &DenseNfa,
    node: u32,
    state: u32,
    scratch: &mut DeltaScratch,
) -> Vec<u32> {
    let mut found = Vec::new();
    scratch.visit(node, state);
    scratch.queue.push_back((node, state));
    if query.is_final(state) {
        scratch.node_flag[node as usize] = true;
        found.push(node);
    }
    while let Some((x, s)) = scratch.queue.pop_front() {
        for (a, y) in csr_out.edges_from(x) {
            for &t in query.closed_successors(s, a as usize) {
                if scratch.visit(y, t) {
                    scratch.queue.push_back((y, t));
                    if query.is_final(t) && !scratch.node_flag[y as usize] {
                        scratch.node_flag[y as usize] = true;
                        found.push(y);
                    }
                }
            }
        }
    }
    for &y in &found {
        scratch.node_flag[y as usize] = false;
    }
    scratch.reset();
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::Alphabet;
    use graphdb::{eval_csr, Answer, GraphDb};

    /// Repairs `old` with the delta of one inserted edge and checks the
    /// result against from-scratch evaluation on the updated database.
    fn check_repair(db: &mut GraphDb, query_src: &str, from: &str, label: &str, to: &str) {
        let nfa =
            regexlang::thompson(&regexlang::parse(query_src).unwrap(), db.domain()).unwrap();
        let dense = DenseNfa::from_nfa(&nfa);
        let rev = dense.reverse_closed();
        let mut answer = eval_csr(&db.csr_out(), &dense);

        let sym = db.domain().symbol(label).unwrap();
        let (f, t) = (db.node(from), db.node(to));
        db.add_edge(f, sym, t);
        let (csr_out, csr_in) = (db.csr_out(), db.csr_in());
        answer.extend(delta_pairs(&csr_out, &csr_in, &dense, &rev, f, sym, t));

        let fresh: Answer = eval_csr(&csr_out, &dense);
        assert_eq!(answer, fresh, "repair mismatch for {query_src} + {from}-{label}->{to}");
    }

    #[test]
    fn repairs_the_paper_chain() {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
        db.add_edge_named("n0", "a", "n1");
        db.add_edge_named("n1", "b", "n2");
        db.add_edge_named("n1", "c", "n1");
        check_repair(&mut db, "a·(b·a+c)*", "n2", "a", "n1");
    }

    #[test]
    fn repairs_paths_crossing_the_new_edge_twice() {
        // x* on a chain broken in the middle: inserting the bridge creates
        // pairs whose witnesses cross it, and (via the loop) some that cross
        // twice.
        let mut db = GraphDb::new(Alphabet::from_chars(['x']).unwrap());
        db.add_edge_named("v0", "x", "v1");
        db.add_edge_named("v2", "x", "v3");
        db.add_edge_named("v3", "x", "v0");
        check_repair(&mut db, "x*", "v1", "x", "v2");
    }

    #[test]
    fn unread_labels_produce_no_delta() {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b']).unwrap());
        db.add_edge_named("p", "a", "q");
        let nfa = regexlang::thompson(&regexlang::parse("a*").unwrap(), db.domain()).unwrap();
        let dense = DenseNfa::from_nfa(&nfa);
        let rev = dense.reverse_closed();
        let sym = db.domain().symbol("b").unwrap();
        let (p, q) = (db.node("p"), db.node("q"));
        db.add_edge(q, sym, p);
        assert!(delta_pairs(&db.csr_out(), &db.csr_in(), &dense, &rev, q, sym, p).is_empty());
    }

    #[test]
    fn self_loop_insertions_are_repaired() {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b']).unwrap());
        db.add_edge_named("u", "a", "v");
        db.add_edge_named("v", "b", "w");
        check_repair(&mut db, "a·b*", "v", "b", "v");
    }

    #[test]
    fn epsilon_query_gains_pairs_for_new_nodes_only_via_eval() {
        // ε answers every (v, v); a new edge between existing nodes adds
        // nothing even though every node matches at start.
        let mut db = GraphDb::new(Alphabet::from_chars(['a']).unwrap());
        db.add_edge_named("u", "a", "v");
        check_repair(&mut db, "ε", "v", "a", "u");
    }

    /// Repairs the cached answer after deleting the given edges and checks
    /// the result against from-scratch evaluation on the shrunk database.
    fn check_deletion(
        db: &mut GraphDb,
        query_src: &str,
        removals: &[(&str, &str, &str)],
    ) -> DeletionRepairReport {
        let nfa =
            regexlang::thompson(&regexlang::parse(query_src).unwrap(), db.domain()).unwrap();
        let dense = DenseNfa::from_nfa(&nfa);
        let rev = dense.reverse_closed();
        let (old_out, old_in) = (db.csr_out(), db.csr_in());
        let mut answer = eval_csr(&old_out, &dense);

        let removed: Vec<(NodeId, automata::Symbol, NodeId)> = removals
            .iter()
            .map(|&(f, l, t)| {
                let sym = db.domain().symbol(l).unwrap();
                let (f, t) = (db.node(f), db.node(t));
                assert!(db.remove_edge(f, sym, t), "{f}-{l}->{t} must exist");
                (f, sym, t)
            })
            .collect();
        let new_out = db.csr_out();
        let report =
            deletion_repair(&old_out, &old_in, &new_out, &dense, &rev, &removed, &mut answer);

        let fresh: Answer = eval_csr(&new_out, &dense);
        assert_eq!(answer, fresh, "deletion repair mismatch for {query_src} - {removals:?}");
        report
    }

    #[test]
    fn deleting_the_paper_chain_bridge_shrinks_the_answer() {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b', 'c']).unwrap());
        db.add_edge_named("n0", "a", "n1");
        db.add_edge_named("n1", "b", "n2");
        db.add_edge_named("n1", "c", "n1");
        db.add_edge_named("n2", "a", "n1");
        let report = check_deletion(&mut db, "a·(b·a+c)*", &[("n0", "a", "n1")]);
        assert!(report.overdeleted_pairs > 0);
        assert!(report.rederived_sources > 0);
    }

    #[test]
    fn surviving_witnesses_are_rederived() {
        // Two disjoint x-paths from u to w; deleting one leaves (u, w)
        // derivable through the other — over-deleted, then re-derived.
        let mut db = GraphDb::new(Alphabet::from_chars(['x']).unwrap());
        db.add_edge_named("u", "x", "v1");
        db.add_edge_named("v1", "x", "w");
        db.add_edge_named("u", "x", "v2");
        db.add_edge_named("v2", "x", "w");
        let report = check_deletion(&mut db, "x·x", &[("u", "x", "v1")]);
        assert_eq!(report.overdeleted_pairs, 1, "(u, w) crossed the deleted edge");
        assert_eq!(report.rederived_sources, 1, "u must be re-swept");
    }

    #[test]
    fn unread_labels_cost_no_deletion_work() {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b']).unwrap());
        db.add_edge_named("p", "a", "q");
        db.add_edge_named("q", "b", "p");
        let report = check_deletion(&mut db, "a*", &[("q", "b", "p")]);
        assert_eq!(report, DeletionRepairReport::default());
    }

    #[test]
    fn batch_deletion_covers_paths_crossing_several_deleted_edges() {
        // x* on a cycle: deleting two edges of the cycle at once must drop
        // every pair whose only witnesses crossed either edge.
        let mut db = GraphDb::new(Alphabet::from_chars(['x']).unwrap());
        db.add_edge_named("v0", "x", "v1");
        db.add_edge_named("v1", "x", "v2");
        db.add_edge_named("v2", "x", "v3");
        db.add_edge_named("v3", "x", "v0");
        check_deletion(&mut db, "x*", &[("v1", "x", "v2"), ("v3", "x", "v0")]);
    }

    #[test]
    fn self_loop_deletions_are_repaired() {
        let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b']).unwrap());
        db.add_edge_named("u", "a", "v");
        db.add_edge_named("v", "b", "v");
        db.add_edge_named("v", "b", "w");
        check_deletion(&mut db, "a·b*", &[("v", "b", "v")]);
    }

    #[test]
    fn epsilon_pairs_survive_every_deletion() {
        // Identity pairs are witnessed by the empty path, which no deletion
        // can break: over-deletion may remove (v, v) when a loop witness
        // crossed the edge, but re-derivation restores it.
        let mut db = GraphDb::new(Alphabet::from_chars(['c']).unwrap());
        db.add_edge_named("u", "c", "v");
        db.add_edge_named("v", "c", "u");
        check_deletion(&mut db, "c*", &[("u", "c", "v")]);
    }
}
