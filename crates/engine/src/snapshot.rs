//! The immutable read side of the engine: revision-pinned snapshots.
//!
//! [`crate::QueryEngine`] is the single writer; [`EngineSnapshot`] is the
//! cheaply cloneable (`Arc`) read handle it publishes.  A snapshot is pinned
//! to the revision it was published at: it owns `Arc`s to the frozen CSR
//! adjacency, the compiled view automata, and the materialized view
//! extensions of that revision, so any number of reader threads can
//! evaluate against it with `&self` while the writer keeps mutating and
//! repairing — the writer never mutates shared data in place
//! (copy-on-write via [`Arc::make_mut`]), it only publishes fresh `Arc`s.
//!
//! Snapshots share the engine's compile cache and ad-hoc answer cache
//! (the crate-private `AnswerCache` below); both are concurrent
//! (sharded/`RwLock`-backed with atomic LRU clocks), so readers on
//! different threads get cache hits without blocking each other.
//! `EngineSnapshot` is `Send + Sync` by construction — asserted at compile
//! time below.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

use automata::dense::FxHashMap;
use automata::{Alphabet, DenseNfa, Nfa};
use graphdb::{
    eval_csr_from, eval_csr_from_budgeted, eval_csr_pair, eval_csr_pair_budgeted, Answer,
    CsrAdjacency, EvalScratch, MaterializedViews, NodeId, PairScratch, PairTimings, Reachable,
    SweepState,
};
use regexlang::Regex;
use telemetry::{ParallelBreakdown, Phase, Span, TraceContext};

use crate::budget::QueryBudget;
use crate::cache::CompileCache;
use crate::error::EngineError;
use crate::fingerprint::{fingerprint_nfa, fingerprint_regex, Fingerprint};
use crate::metrics::EngineTelemetry;
use crate::parallel::{
    available_threads, eval_csr_parallel_breakdown, eval_csr_parallel_budgeted_breakdown,
};
use crate::query_engine::{EngineConfig, EngineStats};

fn as_us(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

/// Compile-time proof that the read handle crosses threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineSnapshot>();
    assert_send_sync::<AnswerCache>();
    assert_send_sync::<PointCache>();
    assert_send_sync::<SharedStats>();
};

/// Worker count for a graph of `num_nodes`, honoring the configured
/// threshold below which evaluation stays sequential.
pub(crate) fn threads_for(config: &EngineConfig, num_nodes: usize) -> usize {
    if num_nodes < config.parallel_threshold {
        return 1;
    }
    match config.threads {
        0 => available_threads(),
        n => n,
    }
}

// ---------------------------------------------------------------------------
// Shared counters

/// Engine-wide counters shared (as atomics) between the writer and every
/// published snapshot, so `stats()` stays accurate no matter which side of
/// the split did the work.
#[derive(Debug, Default)]
pub(crate) struct SharedStats {
    pub view_full_materializations: AtomicU64,
    pub view_cache_hits: AtomicU64,
    pub view_delta_repairs: AtomicU64,
    pub parallel_evals: AtomicU64,
    pub sequential_evals: AtomicU64,
    pub parallel_chunks: AtomicU64,
    pub parallel_steals: AtomicU64,
    pub parallel_repairs: AtomicU64,
    pub identity_cover_pairs: AtomicU64,
    pub view_deletion_repairs: AtomicU64,
    pub deletion_support_skips: AtomicU64,
    pub deletion_overdeleted_pairs: AtomicU64,
    pub deletion_rederived_sources: AtomicU64,
    pub budget_interrupted_evals: AtomicU64,
    pub repair_budget_drops: AtomicU64,
    pub snapshot_retained: AtomicU64,
    pub snapshot_dropped: AtomicU64,
    pub pair_evals: AtomicU64,
    pub from_evals: AtomicU64,
    pub point_extension_hits: AtomicU64,
}

#[inline]
pub(crate) fn bump(counter: &AtomicU64) {
    // ordering: Relaxed — every counter routed through here is a monotone
    // statistic read by stats()/metrics observers; no data is published
    // through it.
    counter.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// The concurrent ad-hoc answer cache

/// One cached ad-hoc answer: the revision it is valid at and its LRU clock
/// (atomic, so a read-locked lookup can bump it without the write lock).
#[derive(Debug)]
struct AnswerEntry {
    revision: u64,
    last_used: AtomicU64,
    answer: Arc<Answer>,
}

/// The shared ad-hoc answer cache: query fingerprint → revision-tagged
/// answer, bounded by an LRU capacity.
///
/// Answers are served **only on an exact revision match**, which is what
/// makes non-monotone mutation safe: an edge deletion bumps the revision
/// like an insertion does, so an answer that *shrank* at the new revision
/// can never be served from the old entry, and a reader pinned at the old
/// revision never sees the shrunken answer.
///
/// Concurrency model: lookups take the read lock (many readers at once) and
/// bump the entry's atomic LRU clock; only insertions and evictions take the
/// write lock.  Entries are *not* cleared on mutation — snapshots pinned at
/// older revisions may still be serving them.  Staleness is **directional**
/// (revisions are monotone, so an entry older than the asking reader can
/// never become useful again, while a newer entry is live for newer
/// readers):
///
/// * a lookup that finds an *older*-revision entry **evicts it** (it would
///   otherwise pin capacity and force a live entry out); a *newer* entry is
///   left resident and the lookup simply misses,
/// * an insertion never displaces a newer-revision entry for the same query
///   (the caller keeps its uncached answer), and a capacity eviction
///   prefers older-revision entries over live ones —
///
/// so stale entries never count against the configured capacity, and a
/// reader pinned at an old revision can never thrash answers that current
/// readers are hitting.
#[derive(Debug)]
pub(crate) struct AnswerCache {
    capacity: usize,
    tick: AtomicU64,
    map: RwLock<FxHashMap<Fingerprint, AnswerEntry>>,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub stale_evictions: AtomicU64,
    pub compactions: AtomicU64,
}

impl AnswerCache {
    // ordering: Relaxed throughout this impl — the LRU tick and last_used
    // stamps only bias victim selection (an approximate clock is fine), and
    // the hit/miss/eviction tallies are monotone statistics.  Answers are
    // published through the map's RwLock, never through these atomics.
    pub fn new(capacity: usize) -> Self {
        AnswerCache {
            capacity,
            tick: AtomicU64::new(0),
            map: RwLock::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_evictions: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        }
    }

    /// Evicts every entry tagged with a revision strictly older than
    /// `oldest_live`, returning how many were dropped (also added to the
    /// `compactions` counter).
    ///
    /// Called by the writer when the retention window advances: once the
    /// oldest retained snapshot moves past a revision, no reader the engine
    /// still serves can ask at that revision again — lazy lookup-time
    /// eviction would otherwise leave a long-pinned reader's answers
    /// resident until capacity pressure happened to select them.
    pub fn compact_older_than(&self, oldest_live: u64) -> u64 {
        // Writer-side housekeeping; recover from reader poison (the map is
        // only ever mutated in complete steps under the guard).
        let mut map = self.map.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let before = map.len();
        map.retain(|_, entry| entry.revision >= oldest_live);
        let evicted = (before - map.len()) as u64;
        if evicted > 0 {
            self.compactions.fetch_add(evicted, Ordering::Relaxed);
        }
        evicted
    }

    /// Number of resident answers (always within the capacity bound).
    pub fn len(&self) -> usize {
        self.map.read().expect("answer cache poisoned").len()
    }

    /// Next LRU timestamp.  Bumped on hits and insertions only — misses do
    /// not advance the clock.
    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up a live answer for `fp` at `revision`, bumping its LRU clock.
    /// A resident entry from an *older* revision is evicted on the spot; a
    /// *newer* one (another reader's live answer) is left alone.
    pub fn get(&self, fp: Fingerprint, revision: u64) -> Option<Arc<Answer>> {
        {
            let map = self.map.read().expect("answer cache poisoned");
            match map.get(&fp) {
                Some(entry) if entry.revision == revision => {
                    entry.last_used.store(self.next_tick(), Ordering::Relaxed);
                    bump(&self.hits);
                    return Some(entry.answer.clone());
                }
                Some(entry) if entry.revision < revision => {
                    // Stale: fall through to evict under the write lock.
                }
                _ => {
                    bump(&self.misses);
                    return None;
                }
            }
        }
        let mut map = self.map.write().expect("answer cache poisoned");
        // Re-check: another thread may have refreshed (or already evicted)
        // the entry between the locks.
        match map.get(&fp) {
            Some(entry) if entry.revision == revision => {
                entry.last_used.store(self.next_tick(), Ordering::Relaxed);
                bump(&self.hits);
                Some(entry.answer.clone())
            }
            Some(entry) if entry.revision < revision => {
                map.remove(&fp);
                bump(&self.stale_evictions);
                bump(&self.misses);
                None
            }
            _ => {
                bump(&self.misses);
                None
            }
        }
    }

    /// Inserts an answer computed at `revision`, evicting (stale-first, then
    /// least-recently-used) when the capacity bound is reached.  Capacity 0
    /// disables caching entirely.
    ///
    /// Returns the canonical resident `Arc`: when another thread raced the
    /// same evaluation and inserted first, its answer is adopted and the
    /// caller's copy dropped, so concurrent readers converge on one
    /// allocation per (query, revision).
    pub fn put(&self, fp: Fingerprint, revision: u64, answer: Arc<Answer>) -> Arc<Answer> {
        if self.capacity == 0 {
            return answer;
        }
        let mut map = self.map.write().expect("answer cache poisoned");
        if let Some(entry) = map.get(&fp) {
            if entry.revision == revision {
                entry.last_used.store(self.next_tick(), Ordering::Relaxed);
                return entry.answer.clone();
            }
            if entry.revision > revision {
                // A newer reader's live answer owns this slot; a pinned
                // older reader must not clobber it — its answer just goes
                // uncached.
                return answer;
            }
        }
        if !map.contains_key(&fp) && map.len() >= self.capacity {
            // Victim preference: genuinely stale (older than the inserting
            // revision) first, then LRU among same-revision peers.  Never a
            // *newer* entry — an old pinned reader churning through distinct
            // queries must not flush answers current readers are hitting;
            // if everything resident is newer, its answer goes uncached.
            let victim = map
                .iter()
                .filter(|(_, entry)| entry.revision < revision)
                .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                .or_else(|| {
                    map.iter()
                        .filter(|(_, entry)| entry.revision == revision)
                        .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                })
                .map(|(&fp, _)| fp);
            match victim {
                Some(victim) => {
                    map.remove(&victim);
                    bump(&self.evictions);
                }
                None => return answer,
            }
        }
        map.insert(
            fp,
            AnswerEntry {
                revision,
                last_used: AtomicU64::new(self.next_tick()),
                answer: answer.clone(),
            },
        );
        answer
    }
}

// ---------------------------------------------------------------------------
// The concurrent point-query cache

/// One cached single-source answer: the complete, sorted target list of one
/// `(query, source)` at one revision.
#[derive(Debug)]
struct PointEntry {
    revision: u64,
    last_used: AtomicU64,
    targets: Arc<Vec<NodeId>>,
}

/// The point-query cache: `(query fingerprint, source node)` →
/// revision-tagged *complete* reachable-target list, bounded by an LRU
/// capacity.
///
/// This is the interactive-read-path sibling of [`AnswerCache`], with the
/// same revision regime — exact-revision hits only, stale (older) entries
/// evicted at lookup, newer entries never clobbered or displaced by pinned
/// older readers, and writer-driven [`PointCache::compact_older_than`] when
/// the retention window advances.  The exact-revision tag is what makes DRed
/// deletions safe here: a deletion bumps the revision like an insertion
/// does, so a target list that *shrank* can never be served from the old
/// entry while pinned readers at the old revision keep their hits.
///
/// Only **complete** target lists are admitted (a drained single-source
/// frontier) — a `limit`-truncated or budget-interrupted sweep is a partial
/// verdict and must never be cached, because a later lookup with a larger
/// `limit` (or a pair probe for an absent target) would read absence into
/// the truncation.
#[derive(Debug)]
pub(crate) struct PointCache {
    capacity: usize,
    tick: AtomicU64,
    map: RwLock<FxHashMap<(Fingerprint, u32), PointEntry>>,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub stale_evictions: AtomicU64,
    pub compactions: AtomicU64,
}

impl PointCache {
    // ordering: Relaxed throughout this impl — same contract as AnswerCache:
    // the LRU tick and last_used stamps only bias victim selection and the
    // tallies are monotone statistics; target lists are published through
    // the map's RwLock, never through these atomics.
    pub fn new(capacity: usize) -> Self {
        PointCache {
            capacity,
            tick: AtomicU64::new(0),
            map: RwLock::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_evictions: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        }
    }

    /// Evicts every entry tagged with a revision strictly older than
    /// `oldest_live`, returning how many were dropped (also added to the
    /// `compactions` counter).  Called beside
    /// [`AnswerCache::compact_older_than`] when the retention window
    /// advances.
    pub fn compact_older_than(&self, oldest_live: u64) -> u64 {
        let mut map = self.map.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let before = map.len();
        map.retain(|_, entry| entry.revision >= oldest_live);
        let evicted = (before - map.len()) as u64;
        if evicted > 0 {
            self.compactions.fetch_add(evicted, Ordering::Relaxed);
        }
        evicted
    }

    /// Number of resident target lists (always within the capacity bound).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.map.read().expect("point cache poisoned").len()
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up the complete target list of `(fp, source)` at `revision`,
    /// bumping its LRU clock.  A resident entry from an *older* revision is
    /// evicted on the spot; a *newer* one is left alone and the lookup
    /// misses.
    pub fn get(&self, fp: Fingerprint, source: u32, revision: u64) -> Option<Arc<Vec<NodeId>>> {
        let key = (fp, source);
        {
            let map = self.map.read().expect("point cache poisoned");
            match map.get(&key) {
                Some(entry) if entry.revision == revision => {
                    entry.last_used.store(self.next_tick(), Ordering::Relaxed);
                    bump(&self.hits);
                    return Some(entry.targets.clone());
                }
                Some(entry) if entry.revision < revision => {
                    // Stale: fall through to evict under the write lock.
                }
                _ => {
                    bump(&self.misses);
                    return None;
                }
            }
        }
        let mut map = self.map.write().expect("point cache poisoned");
        match map.get(&key) {
            Some(entry) if entry.revision == revision => {
                entry.last_used.store(self.next_tick(), Ordering::Relaxed);
                bump(&self.hits);
                Some(entry.targets.clone())
            }
            Some(entry) if entry.revision < revision => {
                map.remove(&key);
                bump(&self.stale_evictions);
                bump(&self.misses);
                None
            }
            _ => {
                bump(&self.misses);
                None
            }
        }
    }

    /// Inserts a *complete* target list computed at `revision`, evicting
    /// (stale-first, then least-recently-used) at capacity; capacity 0
    /// disables caching.  Returns the canonical resident `Arc` (a racing
    /// inserter's copy is adopted), mirroring [`AnswerCache::put`].
    pub fn put(
        &self,
        fp: Fingerprint,
        source: u32,
        revision: u64,
        targets: Arc<Vec<NodeId>>,
    ) -> Arc<Vec<NodeId>> {
        if self.capacity == 0 {
            return targets;
        }
        let key = (fp, source);
        let mut map = self.map.write().expect("point cache poisoned");
        if let Some(entry) = map.get(&key) {
            if entry.revision == revision {
                entry.last_used.store(self.next_tick(), Ordering::Relaxed);
                return entry.targets.clone();
            }
            if entry.revision > revision {
                // A newer reader's live list owns this slot; the pinned
                // older reader's result just goes uncached.
                return targets;
            }
        }
        if !map.contains_key(&key) && map.len() >= self.capacity {
            let victim = map
                .iter()
                .filter(|(_, entry)| entry.revision < revision)
                .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                .or_else(|| {
                    map.iter()
                        .filter(|(_, entry)| entry.revision == revision)
                        .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
                })
                .map(|(&key, _)| key);
            match victim {
                Some(victim) => {
                    map.remove(&victim);
                    bump(&self.evictions);
                }
                None => return targets,
            }
        }
        map.insert(
            key,
            PointEntry {
                revision,
                last_used: AtomicU64::new(self.next_tick()),
                targets: targets.clone(),
            },
        );
        targets
    }
}

// ---------------------------------------------------------------------------
// The shared ad-hoc read path

/// The one copy of the ad-hoc evaluation protocol
/// (fingerprint → answer-cache get → compile → product-BFS → cache put),
/// borrowed over either side of the split: the writer's current state or a
/// snapshot's pinned state.  Keeping a single implementation is what makes
/// the two paths answer- and stats-identical by construction.
pub(crate) struct AdhocReader<'a> {
    pub revision: u64,
    pub config: &'a EngineConfig,
    pub csr_out: &'a CsrAdjacency,
    pub compile: &'a CompileCache,
    pub answers: &'a AnswerCache,
    pub stats: &'a SharedStats,
    /// Shared timing telemetry; histogram recording is gated by its
    /// `enabled` flag ([`EngineConfig::telemetry`]).
    pub telemetry: &'a EngineTelemetry,
    /// Per-query trace, when the caller asked for one.  Tracing is honored
    /// independently of the passive histogram flag — the caller opted in
    /// explicitly for this query.
    pub trace: Option<&'a TraceContext>,
}

impl AdhocReader<'_> {
    /// Whether this evaluation needs any `Instant` reads at all.
    fn timed(&self) -> bool {
        self.telemetry.enabled() || self.trace.is_some()
    }

    /// Records the end of a product-BFS phase: top-level `ProductBfs` and
    /// `ChunkMerge` spans (non-overlapping: the merge time is carved out of
    /// the measured interval), per-worker detail spans, and the sweep
    /// histogram.
    fn finish_bfs(&self, started: Instant, breakdown: Option<&ParallelBreakdown>) {
        let total_us = as_us(started.elapsed());
        let merge_us = breakdown.map_or(0, |b| b.merge_us).min(total_us);
        let bfs_us = total_us - merge_us;
        if self.telemetry.enabled() {
            self.telemetry.product_bfs().record(bfs_us);
        }
        if let (Some(trace), Some(breakdown)) = (self.trace, breakdown) {
            let start_us = as_us(started.saturating_duration_since(trace.origin()));
            trace.record_span(Span {
                phase: Phase::ProductBfs,
                worker: None,
                start_us,
                duration_us: bfs_us,
            });
            trace.record_span(Span {
                phase: Phase::ChunkMerge,
                worker: None,
                start_us: start_us + bfs_us,
                duration_us: merge_us,
            });
            breakdown.record_into(trace);
        }
    }

    /// Folds the pool's scheduler counters (chunks processed, chunks stolen)
    /// into the shared stats, which back both `stats()` and the Prometheus
    /// `metrics` op.
    fn note_scheduler(&self, breakdown: &ParallelBreakdown) {
        // ordering: Relaxed — scheduler tallies are monotone statistics.
        self.stats
            .parallel_chunks
            .fetch_add(breakdown.total_chunks(), Ordering::Relaxed);
        self.stats
            .parallel_steals
            .fetch_add(breakdown.total_steals(), Ordering::Relaxed);
    }

    pub fn eval_on_csr(&self, dense: &DenseNfa) -> Answer {
        let threads = threads_for(self.config, self.csr_out.num_nodes());
        if threads > 1 {
            bump(&self.stats.parallel_evals);
        } else {
            bump(&self.stats.sequential_evals);
        }
        // The breakdown variant is within noise of the plain one (timing at
        // chunk boundaries only), so every path takes it and the scheduler
        // counters stay live even with tracing and telemetry off.
        let timed = (self.trace.is_some() || self.telemetry.enabled()).then(Instant::now);
        let (answer, breakdown) = eval_csr_parallel_breakdown(self.csr_out, dense, threads);
        self.note_scheduler(&breakdown);
        if let Some(started) = timed {
            self.finish_bfs(started, Some(&breakdown));
        }
        answer
    }

    pub fn eval_regex(&self, query: &Regex) -> Arc<Answer> {
        let started = self.timed().then(Instant::now);
        let domain = self.csr_out.domain();
        let fp = fingerprint_regex(domain, query);
        if let Some(cached) = self.answers.get(fp, self.revision) {
            self.finish_eval(started);
            return cached;
        }
        let compile_started = self.timed().then(Instant::now);
        let dense = self.compile.compile_regex(domain, query);
        self.finish_compile(compile_started);
        let answer = Arc::new(self.eval_on_csr(&dense));
        let answer = self.answers.put(fp, self.revision, answer);
        self.finish_eval(started);
        answer
    }

    pub fn eval_nfa(&self, query: &Nfa) -> Arc<Answer> {
        let started = self.timed().then(Instant::now);
        let fp = fingerprint_nfa(query);
        if let Some(cached) = self.answers.get(fp, self.revision) {
            self.finish_eval(started);
            return cached;
        }
        let compile_started = self.timed().then(Instant::now);
        let dense = self.compile.compile_nfa(query);
        self.finish_compile(compile_started);
        let answer = Arc::new(self.eval_on_csr(&dense));
        let answer = self.answers.put(fp, self.revision, answer);
        self.finish_eval(started);
        answer
    }

    /// Records the whole-evaluation histogram sample (`started` spans from
    /// fingerprinting to the cached/merged answer).
    fn finish_eval(&self, started: Option<Instant>) {
        if let Some(started) = started {
            if self.telemetry.enabled() {
                self.telemetry.eval().record_duration(started.elapsed());
            }
        }
    }

    /// Records the compile histogram sample and the `Compile` trace span.
    fn finish_compile(&self, started: Option<Instant>) {
        if let Some(started) = started {
            if self.telemetry.enabled() {
                self.telemetry.compile().record_duration(started.elapsed());
            }
            if let Some(trace) = self.trace {
                trace.record(Phase::Compile, started);
            }
        }
    }

    /// Records the `CacheLookup` trace span (fingerprint + answer-cache
    /// probe).
    fn finish_lookup(&self, started: Option<Instant>) {
        if let (Some(started), Some(trace)) = (started, self.trace) {
            trace.record(Phase::CacheLookup, started);
        }
    }

    /// Budgeted product-BFS over the pinned CSR.  An unlimited budget takes
    /// the check-free fast path; an interrupt bumps
    /// `budget_interrupted_evals` and carries the partial-work count.
    pub fn eval_on_csr_budgeted(
        &self,
        dense: &DenseNfa,
        budget: &QueryBudget,
    ) -> Result<Answer, EngineError> {
        if budget.is_unlimited() {
            return Ok(self.eval_on_csr(dense));
        }
        let threads = threads_for(self.config, self.csr_out.num_nodes());
        if threads > 1 {
            bump(&self.stats.parallel_evals);
        } else {
            bump(&self.stats.sequential_evals);
        }
        let sweep = budget.to_sweep();
        let progress = SweepState::new();
        let timed = (self.trace.is_some() || self.telemetry.enabled()).then(Instant::now);
        let (result, breakdown) =
            eval_csr_parallel_budgeted_breakdown(self.csr_out, dense, threads, &sweep, &progress);
        // The breakdown survives an interrupt, so the scheduler counters
        // (and, with tracing on, the per-worker partial-work spans) reflect
        // budget-killed evaluations too.
        self.note_scheduler(&breakdown);
        if let (Some(started), Ok(_)) = (timed, &result) {
            self.finish_bfs(started, Some(&breakdown));
        }
        result.map_err(|why| {
            bump(&self.stats.budget_interrupted_evals);
            EngineError::from_interrupt(why, progress.visited())
        })
    }

    /// Budgeted, fallible regex evaluation: compile failures surface as
    /// [`EngineError`] and budget interrupts carry partial-work stats.  A
    /// cache hit is returned regardless of the budget (serving a resident
    /// answer costs nothing); partial answers are never cached.
    pub fn eval_regex_budgeted(
        &self,
        query: &Regex,
        budget: &QueryBudget,
    ) -> Result<Arc<Answer>, EngineError> {
        let started = self.timed().then(Instant::now);
        let domain = self.csr_out.domain();
        let fp = fingerprint_regex(domain, query);
        let cached = self.answers.get(fp, self.revision);
        self.finish_lookup(started);
        if let Some(cached) = cached {
            self.finish_eval(started);
            return Ok(cached);
        }
        let compile_started = self.timed().then(Instant::now);
        let dense = self.compile.try_compile_regex(domain, query)?;
        self.finish_compile(compile_started);
        let answer = Arc::new(self.eval_on_csr_budgeted(&dense, budget)?);
        let answer = self.answers.put(fp, self.revision, answer);
        self.finish_eval(started);
        Ok(answer)
    }

    /// Budgeted, fallible automaton-form evaluation.
    pub fn eval_nfa_budgeted(
        &self,
        query: &Nfa,
        budget: &QueryBudget,
    ) -> Result<Arc<Answer>, EngineError> {
        let started = self.timed().then(Instant::now);
        let fp = fingerprint_nfa(query);
        let cached = self.answers.get(fp, self.revision);
        self.finish_lookup(started);
        if let Some(cached) = cached {
            self.finish_eval(started);
            return Ok(cached);
        }
        let compile_started = self.timed().then(Instant::now);
        let dense = self.compile.compile_nfa(query);
        self.finish_compile(compile_started);
        let answer = Arc::new(self.eval_on_csr_budgeted(&dense, budget)?);
        let answer = self.answers.put(fp, self.revision, answer);
        self.finish_eval(started);
        Ok(answer)
    }
}

// ---------------------------------------------------------------------------
// The snapshot

/// One view captured at publish time: its extension at the snapshot's
/// revision (the compiled automaton stays interned in the shared compile
/// cache).
#[derive(Debug)]
struct SnapshotView {
    name: String,
    extension: Arc<Answer>,
}

/// An immutable, revision-pinned read handle over the engine's state.
///
/// Published by [`crate::QueryEngine::publish_snapshot`]; cheap to clone
/// (`Arc` all the way down) and `Send + Sync`, so it can be handed to any
/// number of reader threads.  All evaluation methods take `&self`:
///
/// * [`eval_regex`](Self::eval_regex) / [`eval_str`](Self::eval_str) /
///   [`eval_nfa`](Self::eval_nfa) — ad-hoc queries over the snapshot's
///   database revision, through the shared compile and answer caches;
/// * [`view_extension`](Self::view_extension) — the materialized extension
///   of a registered view at this revision;
/// * [`materialized_views`](Self::materialized_views) /
///   [`eval_over_views`](Self::eval_over_views) /
///   [`eval_dfa_over_views`](Self::eval_dfa_over_views) — Σ_E-evaluation of
///   rewritings over the captured extensions (the view graph is built
///   lazily, once per snapshot).
///
/// Answers are exactly the answers at [`revision`](Self::revision): the
/// writer repairs its own extensions copy-on-write and publishes new
/// snapshots, so concurrent mutations — insertions *and* DRed deletions —
/// never show through an existing handle.
///
/// # Examples
///
/// Hand a snapshot to a reader thread and keep mutating the writer; the
/// reader's answers stay pinned even while edges are deleted:
///
/// ```
/// use automata::Alphabet;
/// use engine::QueryEngine;
/// use graphdb::GraphDb;
///
/// let mut db = GraphDb::new(Alphabet::from_chars(['a', 'b']).unwrap());
/// db.add_edge_named("u", "a", "v");
/// db.add_edge_named("v", "b", "w");
/// let mut engine = QueryEngine::new(db);
/// engine.register_view("ab", regexlang::parse("a·b").unwrap());
///
/// let snapshot = engine.publish_snapshot();
/// let pinned = snapshot.clone();
/// let reader = std::thread::spawn(move || pinned.eval_str("a·b").len());
///
/// // The writer deletes the b-edge: its own answers shrink…
/// engine.remove_edge_named("v", "b", "w");
/// assert_eq!(engine.eval_str("a·b").len(), 0);
///
/// // …but the pinned reader still sees the revision-0 answer.
/// assert_eq!(reader.join().unwrap(), 1);
/// assert_eq!(snapshot.eval_str("a·b").len(), 1);
/// ```
#[derive(Debug)]
pub struct EngineSnapshot {
    revision: u64,
    views_epoch: u64,
    config: EngineConfig,
    csr_out: Arc<CsrAdjacency>,
    /// The frozen *incoming* adjacency at this revision — the backward half
    /// of the bidirectional single-pair evaluator.
    csr_in: Arc<CsrAdjacency>,
    num_nodes: usize,
    views: Vec<SnapshotView>,
    /// The Σ_E view graph over the captured extensions, built on first use.
    materialized: OnceLock<Arc<MaterializedViews>>,
    compile: Arc<CompileCache>,
    answers: Arc<AnswerCache>,
    points: Arc<PointCache>,
    stats: Arc<SharedStats>,
    telemetry: Arc<EngineTelemetry>,
    /// When this snapshot was built, for the pinned-snapshot-age gauges.
    published_at: Instant,
}

impl EngineSnapshot {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        revision: u64,
        views_epoch: u64,
        config: EngineConfig,
        csr_out: Arc<CsrAdjacency>,
        csr_in: Arc<CsrAdjacency>,
        num_nodes: usize,
        views: Vec<(String, Arc<Answer>)>,
        compile: Arc<CompileCache>,
        answers: Arc<AnswerCache>,
        points: Arc<PointCache>,
        stats: Arc<SharedStats>,
        telemetry: Arc<EngineTelemetry>,
    ) -> Self {
        EngineSnapshot {
            revision,
            views_epoch,
            config,
            csr_out,
            csr_in,
            num_nodes,
            views: views
                .into_iter()
                .map(|(name, extension)| SnapshotView { name, extension })
                .collect(),
            materialized: OnceLock::new(),
            compile,
            answers,
            points,
            stats,
            telemetry,
            published_at: Instant::now(),
        }
    }

    /// The database revision this snapshot is pinned to.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The view-set epoch this snapshot was published at.
    pub(crate) fn views_epoch(&self) -> u64 {
        self.views_epoch
    }

    /// The engine configuration the snapshot evaluates under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of nodes of the database at this revision.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The frozen outgoing adjacency at this revision.
    pub fn csr_out(&self) -> &CsrAdjacency {
        &self.csr_out
    }

    /// The label domain of the underlying database.
    pub fn domain(&self) -> &Alphabet {
        self.csr_out.domain()
    }

    /// Names of the captured views, in registration order.
    pub fn view_names(&self) -> impl Iterator<Item = &str> {
        self.views.iter().map(|v| v.name.as_str())
    }

    /// The extension of a registered view at this snapshot's revision.
    pub fn view_extension(&self, name: &str) -> Option<&Answer> {
        self.views
            .iter()
            .find(|v| v.name == name)
            .map(|v| v.extension.as_ref())
    }

    /// Cache/evaluation counters of the engine this snapshot belongs to
    /// (shared with the writer and every sibling snapshot).
    pub fn stats(&self) -> EngineStats {
        crate::query_engine::assemble_stats(&self.compile, &self.answers, &self.points, &self.stats)
    }

    /// Timing telemetry of the engine this snapshot belongs to (shared with
    /// the writer and every sibling snapshot, like [`stats`](Self::stats)).
    pub fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    /// How long ago this snapshot was published — the age a reader pinned
    /// to it is serving at.
    pub fn age(&self) -> Duration {
        self.published_at.elapsed()
    }

    /// The shared ad-hoc read path, borrowed over this snapshot's pinned
    /// state.
    fn adhoc(&self) -> AdhocReader<'_> {
        AdhocReader {
            revision: self.revision,
            config: &self.config,
            csr_out: &self.csr_out,
            compile: &self.compile,
            answers: &self.answers,
            stats: &self.stats,
            telemetry: &self.telemetry,
            trace: None,
        }
    }

    /// [`adhoc`](Self::adhoc) with a per-query trace attached: every phase
    /// of the evaluation records a span into `trace`.
    fn adhoc_traced<'a>(&'a self, trace: &'a TraceContext) -> AdhocReader<'a> {
        AdhocReader {
            trace: Some(trace),
            ..self.adhoc()
        }
    }

    /// Evaluates a regex query at this revision, through the shared compile
    /// and answer caches.
    pub fn eval_regex(&self, query: &Regex) -> Arc<Answer> {
        self.adhoc().eval_regex(query)
    }

    /// Evaluates a query written in the paper's concrete syntax.
    pub fn eval_str(&self, query: &str) -> Arc<Answer> {
        let expr = regexlang::parse(query).expect("query must parse");
        self.eval_regex(&expr)
    }

    /// Evaluates an automaton-form query at this revision, through the
    /// shared compile and answer caches.
    pub fn eval_nfa(&self, query: &Nfa) -> Arc<Answer> {
        self.adhoc().eval_nfa(query)
    }

    /// Fallible variant of [`eval_str`](Self::eval_str): parse failures and
    /// out-of-domain labels surface as [`EngineError`] instead of panicking.
    pub fn try_eval_str(&self, query: &str) -> Result<Arc<Answer>, EngineError> {
        self.eval_str_budgeted(query, &QueryBudget::unlimited())
    }

    /// Budgeted, fallible evaluation of a query in the paper's concrete
    /// syntax — the entry point the service layer uses.  The budget's first
    /// tripped limit maps to [`EngineError::DeadlineExceeded`],
    /// [`EngineError::VisitBudgetExceeded`], or [`EngineError::Cancelled`],
    /// each carrying the number of product pairs visited before the
    /// interrupt.  Interrupted evaluations never pollute the answer cache.
    pub fn eval_str_budgeted(
        &self,
        query: &str,
        budget: &QueryBudget,
    ) -> Result<Arc<Answer>, EngineError> {
        let expr = regexlang::parse(query)?;
        self.eval_regex_budgeted(&expr, budget)
    }

    /// [`eval_str_budgeted`](Self::eval_str_budgeted) with per-query span
    /// tracing: each phase of the pipeline — parse, cache lookup, compile,
    /// product-BFS, chunk merge — records a span into `trace`, with
    /// per-worker chunk-acquire/sweep detail spans when the parallel pool
    /// runs.  Top-level spans are non-overlapping, so their sum compared to
    /// [`telemetry::TraceContext::total_us`] measures untraced overhead.
    /// The answer (and any error) is identical to the untraced call.
    pub fn eval_str_traced(
        &self,
        query: &str,
        budget: &QueryBudget,
        trace: &TraceContext,
    ) -> Result<Arc<Answer>, EngineError> {
        let parse_started = Instant::now();
        let expr = regexlang::parse(query)?;
        trace.record(Phase::Parse, parse_started);
        self.adhoc_traced(trace).eval_regex_budgeted(&expr, budget)
    }

    /// Budgeted, fallible variant of [`eval_regex`](Self::eval_regex).
    pub fn eval_regex_budgeted(
        &self,
        query: &Regex,
        budget: &QueryBudget,
    ) -> Result<Arc<Answer>, EngineError> {
        self.adhoc().eval_regex_budgeted(query, budget)
    }

    /// Budgeted, fallible variant of [`eval_nfa`](Self::eval_nfa).
    pub fn eval_nfa_budgeted(
        &self,
        query: &Nfa,
        budget: &QueryBudget,
    ) -> Result<Arc<Answer>, EngineError> {
        self.adhoc().eval_nfa_budgeted(query, budget)
    }

    // -- the interactive read path --------------------------------------

    /// Bounds-checks an interactive lookup argument against this revision's
    /// node count.
    fn check_node(&self, node: NodeId) -> Result<u32, EngineError> {
        if node >= self.num_nodes {
            return Err(EngineError::NodeOutOfRange {
                node,
                num_nodes: self.num_nodes,
            });
        }
        Ok(node as u32)
    }

    /// Records one interactive point lookup — whichever path served it —
    /// into the `interactive` histogram.
    fn finish_interactive(&self, started: Option<Instant>) {
        if let Some(started) = started {
            if self.telemetry.enabled() {
                self.telemetry
                    .interactive()
                    .record_duration(started.elapsed());
            }
        }
    }

    /// Applies a `limit` to a *complete* target list served from a cache:
    /// truncating below the full count reports `complete: false`, while a
    /// limit equal to the count stays `complete: true` (the full set is
    /// known, so nothing was left behind — unlike a fresh search, which
    /// stops at the k-th target without learning whether more exist).
    fn clamp_targets(mut targets: Vec<NodeId>, limit: Option<usize>) -> Reachable {
        match limit {
            Some(k) if k < targets.len() => {
                targets.truncate(k);
                Reachable {
                    targets,
                    complete: false,
                }
            }
            _ => Reachable {
                targets,
                complete: true,
            },
        }
    }

    /// Is `target` reachable from `source` along a path spelling a word of
    /// `query`?
    ///
    /// The lookup is served from a materialized answer when one is resident
    /// at this revision — the full extension in the ad-hoc answer cache
    /// (binary search on the sorted pair list) or a complete single-source
    /// drain in the point-query cache — and otherwise answered by a
    /// bidirectional meet-in-the-middle search that exits on the first
    /// frontier intersection, never materializing the full answer.
    ///
    /// # Panics
    ///
    /// Panics if the query fails to parse, uses a label outside the domain,
    /// or either node id is out of range.  Use
    /// [`try_eval_pair_str`](Self::try_eval_pair_str) for the fallible
    /// variant.
    pub fn eval_pair_str(&self, query: &str, source: NodeId, target: NodeId) -> bool {
        self.try_eval_pair_str(query, source, target)
            .unwrap_or_else(|e| panic!("eval_pair_str failed: {e}"))
    }

    /// Fallible variant of [`eval_pair_str`](Self::eval_pair_str): parse
    /// failures, out-of-domain labels, and out-of-range node ids surface as
    /// [`EngineError`] instead of panicking.
    pub fn try_eval_pair_str(
        &self,
        query: &str,
        source: NodeId,
        target: NodeId,
    ) -> Result<bool, EngineError> {
        self.eval_pair_str_budgeted(query, source, target, &QueryBudget::unlimited())
    }

    /// Budgeted single-pair lookup.  A budget interrupt surfaces as the
    /// matching [`EngineError`] and **never caches a partial verdict** — an
    /// interrupted bidirectional search leaves both caches untouched, so a
    /// retry answers from scratch.
    pub fn eval_pair_str_budgeted(
        &self,
        query: &str,
        source: NodeId,
        target: NodeId,
        budget: &QueryBudget,
    ) -> Result<bool, EngineError> {
        let expr = regexlang::parse(query)?;
        self.eval_pair_impl(&expr, source, target, budget, None)
    }

    /// [`eval_pair_str_budgeted`](Self::eval_pair_str_budgeted) with
    /// per-query span tracing: parse, the materialized-answer probe
    /// (`meet_check`), compile, and the two halves of the bidirectional
    /// search (`bidir_forward`/`bidir_backward`) each record a span into
    /// `trace`.  The verdict (and any error) is identical to the untraced
    /// call.
    pub fn eval_pair_str_traced(
        &self,
        query: &str,
        source: NodeId,
        target: NodeId,
        budget: &QueryBudget,
        trace: &TraceContext,
    ) -> Result<bool, EngineError> {
        let parse_started = Instant::now();
        let expr = regexlang::parse(query)?;
        trace.record(Phase::Parse, parse_started);
        self.eval_pair_impl(&expr, source, target, budget, Some(trace))
    }

    fn eval_pair_impl(
        &self,
        query: &Regex,
        source: NodeId,
        target: NodeId,
        budget: &QueryBudget,
        trace: Option<&TraceContext>,
    ) -> Result<bool, EngineError> {
        let source_u = self.check_node(source)?;
        let target_u = self.check_node(target)?;
        let timed = self.telemetry.enabled() || trace.is_some();
        let started = timed.then(Instant::now);
        let domain = self.csr_out.domain();
        let fp = fingerprint_regex(domain, query);

        // Probe materialized answers before searching: the full extension
        // (ad-hoc answer cache), then a complete single-source drain
        // (point-query cache).  Both are exact-revision, so a verdict
        // served here is as fresh as a fresh search.
        let probe_started = timed.then(Instant::now);
        let served = if let Some(full) = self.answers.get(fp, self.revision) {
            bump(&self.stats.point_extension_hits);
            Some(full.contains(&(source, target)))
        } else {
            self.points
                .get(fp, source_u, self.revision)
                .map(|targets| targets.binary_search(&target).is_ok())
        };
        if let (Some(trace), Some(probe_started)) = (trace, probe_started) {
            trace.record(Phase::MeetCheck, probe_started);
        }
        if let Some(verdict) = served {
            self.finish_interactive(started);
            return Ok(verdict);
        }

        // Fresh bidirectional meet-in-the-middle search.
        bump(&self.stats.pair_evals);
        let compile_started = timed.then(Instant::now);
        let dense = self.compile.try_compile_regex(domain, query)?;
        let reverse = dense.reverse_closed();
        if let Some(compile_started) = compile_started {
            if self.telemetry.enabled() {
                self.telemetry
                    .compile()
                    .record_duration(compile_started.elapsed());
            }
            if let Some(trace) = trace {
                trace.record(Phase::Compile, compile_started);
            }
        }
        let mut scratch = PairScratch::new(&self.csr_out, &dense);
        let search_started = timed.then(Instant::now);
        let connected = if budget.is_unlimited() && trace.is_none() {
            eval_csr_pair(
                &self.csr_out,
                &self.csr_in,
                &dense,
                &reverse,
                source_u,
                target_u,
                &mut scratch,
            )
        } else {
            let sweep = budget.to_sweep();
            let progress = SweepState::new();
            let mut timings = PairTimings::default();
            let result = eval_csr_pair_budgeted(
                &self.csr_out,
                &self.csr_in,
                &dense,
                &reverse,
                source_u,
                target_u,
                &mut scratch,
                &sweep,
                &progress,
                trace.is_some().then_some(&mut timings),
            );
            match result {
                Ok(connected) => {
                    if let (Some(trace), Some(search_started)) = (trace, search_started) {
                        let start_us =
                            as_us(search_started.saturating_duration_since(trace.origin()));
                        trace.record_span(Span {
                            phase: Phase::BidirForward,
                            worker: None,
                            start_us,
                            duration_us: timings.forward_us,
                        });
                        trace.record_span(Span {
                            phase: Phase::BidirBackward,
                            worker: None,
                            start_us: start_us + timings.forward_us,
                            duration_us: timings.backward_us,
                        });
                    }
                    connected
                }
                Err(why) => {
                    bump(&self.stats.budget_interrupted_evals);
                    return Err(EngineError::from_interrupt(why, progress.visited()));
                }
            }
        };
        self.finish_interactive(started);
        Ok(connected)
    }

    /// All nodes reachable from `source` along paths spelling words of
    /// `query`, sorted ascending, optionally stopping early after `limit`
    /// distinct targets (top-k).
    ///
    /// Served from the ad-hoc answer cache or the point-query cache when a
    /// materialized answer is resident at this revision; otherwise a
    /// single-source product-BFS runs, seeded only at `source`, and — when
    /// it drains completely — populates the point-query cache for later
    /// lookups (including [`eval_pair_str`](Self::eval_pair_str) probes).
    /// Limit-truncated sweeps report `complete: false` and are never cached.
    ///
    /// # Panics
    ///
    /// Panics if the query fails to parse, uses a label outside the domain,
    /// or `source` is out of range.  Use
    /// [`try_eval_from_str`](Self::try_eval_from_str) for the fallible
    /// variant.
    pub fn eval_from_str(&self, query: &str, source: NodeId, limit: Option<usize>) -> Reachable {
        self.try_eval_from_str(query, source, limit)
            .unwrap_or_else(|e| panic!("eval_from_str failed: {e}"))
    }

    /// Fallible variant of [`eval_from_str`](Self::eval_from_str): parse
    /// failures, out-of-domain labels, and an out-of-range source surface as
    /// [`EngineError`] instead of panicking.
    pub fn try_eval_from_str(
        &self,
        query: &str,
        source: NodeId,
        limit: Option<usize>,
    ) -> Result<Reachable, EngineError> {
        self.eval_from_str_budgeted(query, source, limit, &QueryBudget::unlimited())
    }

    /// Budgeted single-source sweep.  A budget interrupt surfaces as the
    /// matching [`EngineError`]; interrupted (like limit-truncated) sweeps
    /// never populate the point-query cache.
    pub fn eval_from_str_budgeted(
        &self,
        query: &str,
        source: NodeId,
        limit: Option<usize>,
        budget: &QueryBudget,
    ) -> Result<Reachable, EngineError> {
        let expr = regexlang::parse(query)?;
        self.eval_from_impl(&expr, source, limit, budget, None)
    }

    /// [`eval_from_str_budgeted`](Self::eval_from_str_budgeted) with
    /// per-query span tracing: parse, the materialized-answer probe
    /// (`meet_check`), compile, and the single-source sweep (`product_bfs`)
    /// each record a span into `trace`.  The answer (and any error) is
    /// identical to the untraced call.
    pub fn eval_from_str_traced(
        &self,
        query: &str,
        source: NodeId,
        limit: Option<usize>,
        budget: &QueryBudget,
        trace: &TraceContext,
    ) -> Result<Reachable, EngineError> {
        let parse_started = Instant::now();
        let expr = regexlang::parse(query)?;
        trace.record(Phase::Parse, parse_started);
        self.eval_from_impl(&expr, source, limit, budget, Some(trace))
    }

    fn eval_from_impl(
        &self,
        query: &Regex,
        source: NodeId,
        limit: Option<usize>,
        budget: &QueryBudget,
        trace: Option<&TraceContext>,
    ) -> Result<Reachable, EngineError> {
        let source_u = self.check_node(source)?;
        let timed = self.telemetry.enabled() || trace.is_some();
        let started = timed.then(Instant::now);
        let domain = self.csr_out.domain();
        let fp = fingerprint_regex(domain, query);

        // Probe materialized answers: slice the source's row out of a full
        // extension, or take a complete single-source drain verbatim.
        let probe_started = timed.then(Instant::now);
        let served = if let Some(full) = self.answers.get(fp, self.revision) {
            bump(&self.stats.point_extension_hits);
            let pairs = full.as_slice();
            let lo = pairs.partition_point(|&(x, _)| x < source);
            let hi = pairs.partition_point(|&(x, _)| x <= source);
            Some(pairs[lo..hi].iter().map(|&(_, y)| y).collect::<Vec<_>>())
        } else {
            self.points
                .get(fp, source_u, self.revision)
                .map(|targets| targets.as_ref().clone())
        };
        if let (Some(trace), Some(probe_started)) = (trace, probe_started) {
            trace.record(Phase::MeetCheck, probe_started);
        }
        if let Some(targets) = served {
            self.finish_interactive(started);
            return Ok(Self::clamp_targets(targets, limit));
        }

        // Fresh single-source sweep, seeded only at `source`.
        bump(&self.stats.from_evals);
        let compile_started = timed.then(Instant::now);
        let dense = self.compile.try_compile_regex(domain, query)?;
        if let Some(compile_started) = compile_started {
            if self.telemetry.enabled() {
                self.telemetry
                    .compile()
                    .record_duration(compile_started.elapsed());
            }
            if let Some(trace) = trace {
                trace.record(Phase::Compile, compile_started);
            }
        }
        let mut scratch = EvalScratch::new(&self.csr_out, &dense);
        let search_started = timed.then(Instant::now);
        let result = if budget.is_unlimited() {
            eval_csr_from(&self.csr_out, &dense, source_u, limit, &mut scratch)
        } else {
            let sweep = budget.to_sweep();
            let progress = SweepState::new();
            eval_csr_from_budgeted(
                &self.csr_out,
                &dense,
                source_u,
                limit,
                &mut scratch,
                &sweep,
                &progress,
            )
            .map_err(|why| {
                bump(&self.stats.budget_interrupted_evals);
                EngineError::from_interrupt(why, progress.visited())
            })?
        };
        if let (Some(trace), Some(search_started)) = (trace, search_started) {
            trace.record(Phase::ProductBfs, search_started);
        }
        if result.complete {
            self.points
                .put(fp, source_u, self.revision, Arc::new(result.targets.clone()));
        }
        self.finish_interactive(started);
        Ok(result)
    }

    /// The captured view extensions as a [`MaterializedViews`], ready for
    /// Σ_E-evaluation of rewritings.  The view graph is built lazily on
    /// first use and shared by every subsequent call (and by the writer's
    /// [`crate::QueryEngine::materialized_views`] at this revision).
    pub fn materialized_views(&self) -> Arc<MaterializedViews> {
        self.materialized
            .get_or_init(|| {
                let view_alphabet =
                    Alphabet::from_names(self.views.iter().map(|v| v.name.clone()))
                        .expect("view names are distinct by construction");
                let extensions = self
                    .views
                    .iter()
                    .map(|v| (v.name.clone(), v.extension.clone()))
                    .collect();
                Arc::new(MaterializedViews::from_shared_extensions(
                    view_alphabet,
                    extensions,
                    self.num_nodes,
                ))
            })
            .clone()
    }

    /// Evaluates a language over the view alphabet (e.g. a rewriting
    /// automaton) against the captured extensions, freezing the automaton
    /// through the shared compile cache.
    pub fn eval_over_views(&self, over_views: &Nfa) -> Answer {
        let dense = self.compile.compile_nfa(over_views);
        self.materialized_views().eval_dense_over_views(&dense)
    }

    /// Evaluates a deterministic Σ_E-automaton — the shape every maximal
    /// rewriting takes — against the captured extensions, interning the
    /// dense form in the shared compile cache by DFA fingerprint.
    pub fn eval_dfa_over_views(&self, rewriting: &automata::Dfa) -> Answer {
        let views = self.materialized_views();
        let dense = self.compile.compile_dfa(views.view_alphabet(), rewriting);
        views.eval_dense_over_views(&dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answer_cache_get_does_not_advance_the_lru_clock_on_misses() {
        let cache = AnswerCache::new(4);
        for _ in 0..10 {
            assert!(cache.get(42, 0).is_none());
        }
        assert_eq!(cache.tick.load(Ordering::Relaxed), 0, "misses must not tick");
        cache.put(42, 0, Arc::new(Answer::new()));
        assert_eq!(cache.tick.load(Ordering::Relaxed), 1);
        assert!(cache.get(42, 0).is_some());
        assert_eq!(cache.tick.load(Ordering::Relaxed), 2);
        assert_eq!(cache.misses.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn stale_lookup_evicts_the_entry() {
        let cache = AnswerCache::new(4);
        cache.put(7, 0, Arc::new(Answer::new()));
        assert_eq!(cache.len(), 1);
        // Same fingerprint, later revision: stale — gone after the lookup.
        assert!(cache.get(7, 1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stale_evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn older_readers_never_clobber_newer_answers() {
        let cache = AnswerCache::new(4);
        let newer = Arc::new(Answer::from([(1, 1)]));
        cache.put(9, 5, newer.clone());
        // A reader pinned at revision 2: miss, but the newer entry stays.
        assert!(cache.get(9, 2).is_none());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stale_evictions.load(Ordering::Relaxed), 0);
        // Its insert does not displace the newer entry…
        let old = Arc::new(Answer::new());
        let kept = cache.put(9, 2, old.clone());
        assert!(Arc::ptr_eq(&kept, &old), "older answer stays uncached");
        // …which the revision-5 reader still hits.
        let hit = cache.get(9, 5).expect("newer entry survived");
        assert!(Arc::ptr_eq(&hit, &newer));
    }

    #[test]
    fn old_readers_at_capacity_never_flush_live_entries() {
        let cache = AnswerCache::new(2);
        cache.put(1, 5, Arc::new(Answer::new())); // live for current readers
        cache.put(2, 5, Arc::new(Answer::new()));
        // A reader pinned at revision 1 churns through distinct queries at
        // capacity: nothing to evict that is older, so nothing is cached —
        // and nothing live is flushed.
        for fp in 10..20 {
            cache.put(fp, 1, Arc::new(Answer::new()));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions.load(Ordering::Relaxed), 0);
        assert!(cache.get(1, 5).is_some(), "live entries survived the churn");
        assert!(cache.get(2, 5).is_some());
    }

    #[test]
    fn capacity_eviction_prefers_stale_entries() {
        let cache = AnswerCache::new(2);
        cache.put(1, 0, Arc::new(Answer::new())); // stale after "mutation"
        cache.put(2, 1, Arc::new(Answer::new())); // live
        cache.get(1, 0); // touch the stale entry so plain LRU would keep it
        cache.get(1, 0);
        cache.put(3, 1, Arc::new(Answer::new())); // at capacity: must evict fp 1
        assert!(cache.get(2, 1).is_some(), "live entry survived");
        assert!(cache.get(3, 1).is_some(), "new entry resident");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions.load(Ordering::Relaxed), 1);
    }

    // -- the point-query cache ------------------------------------------

    #[test]
    fn point_cache_is_keyed_by_query_and_source() {
        let cache = PointCache::new(4);
        cache.put(1, 0, 0, Arc::new(vec![2, 3]));
        cache.put(1, 1, 0, Arc::new(vec![5]));
        assert_eq!(*cache.get(1, 0, 0).expect("source 0 resident"), vec![2, 3]);
        assert_eq!(*cache.get(1, 1, 0).expect("source 1 resident"), vec![5]);
        assert!(cache.get(1, 2, 0).is_none(), "unseen source misses");
        assert!(cache.get(2, 0, 0).is_none(), "unseen query misses");
        assert_eq!(cache.hits.load(Ordering::Relaxed), 2);
        assert_eq!(cache.misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn point_stale_lookup_evicts_the_entry() {
        let cache = PointCache::new(4);
        cache.put(7, 3, 0, Arc::new(vec![1]));
        assert_eq!(cache.len(), 1);
        // Same (query, source), later revision — a deletion may have
        // shrunk the target list, so the entry is gone after the lookup.
        assert!(cache.get(7, 3, 1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stale_evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn point_older_readers_never_clobber_newer_lists() {
        let cache = PointCache::new(4);
        let newer = Arc::new(vec![8, 9]);
        cache.put(9, 0, 5, newer.clone());
        // A reader pinned at revision 2: miss, newer entry untouched.
        assert!(cache.get(9, 0, 2).is_none());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stale_evictions.load(Ordering::Relaxed), 0);
        // Its insert does not displace the newer list…
        let old = Arc::new(Vec::new());
        let kept = cache.put(9, 0, 2, old.clone());
        assert!(Arc::ptr_eq(&kept, &old), "older list stays uncached");
        // …which the revision-5 reader still hits.
        let hit = cache.get(9, 0, 5).expect("newer entry survived");
        assert!(Arc::ptr_eq(&hit, &newer));
    }

    #[test]
    fn point_capacity_eviction_prefers_stale_entries() {
        let cache = PointCache::new(2);
        cache.put(1, 0, 0, Arc::new(vec![1])); // stale after "mutation"
        cache.put(2, 0, 1, Arc::new(vec![2])); // live
        cache.get(1, 0, 0); // touch the stale entry so plain LRU would keep it
        cache.get(1, 0, 0);
        cache.put(3, 0, 1, Arc::new(vec![3])); // at capacity: must evict (1, 0)
        assert!(cache.get(2, 0, 1).is_some(), "live entry survived");
        assert!(cache.get(3, 0, 1).is_some(), "new entry resident");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn point_compaction_drops_everything_below_the_window() {
        let cache = PointCache::new(8);
        cache.put(1, 0, 0, Arc::new(vec![1]));
        cache.put(2, 0, 1, Arc::new(vec![2]));
        cache.put(3, 0, 2, Arc::new(vec![3]));
        assert_eq!(cache.compact_older_than(2), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(3, 0, 2).is_some(), "in-window entry survived");
        assert_eq!(cache.compactions.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn point_cache_capacity_zero_disables_caching() {
        let cache = PointCache::new(0);
        cache.put(1, 0, 0, Arc::new(vec![1]));
        assert_eq!(cache.len(), 0);
        assert!(cache.get(1, 0, 0).is_none());
    }
}
