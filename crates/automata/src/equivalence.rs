//! Language containment and equivalence checks.
//!
//! The exactness check of the paper (Theorem 2.3) reduces to a containment
//! test `L(A_d) ⊆ L(B)` where `B` is the (nondeterministic) expansion of the
//! rewriting.  Theorem 3.2 obtains the 2EXPSPACE upper bound by *not*
//! materializing the complement of `B` and instead exploring the product of
//! `A_d` with the lazily determinized `B` on the fly.  [`dfa_subset_of_nfa`]
//! implements exactly that strategy; [`dfa_subset_of_nfa_explicit`] is the
//! naive explicit-complement variant kept for the ablation benchmark (E11).

use std::collections::{BTreeSet, VecDeque};

use crate::alphabet::Symbol;
use crate::determinize::determinize;
use crate::dfa::Dfa;
use crate::nfa::{Nfa, StateId};
use crate::product::intersect_dfa;

/// Outcome of a containment check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Containment {
    /// The containment holds.
    Holds,
    /// The containment fails; the word is a witness in the left language but
    /// not in the right one.
    FailsWith(Vec<Symbol>),
}

impl Containment {
    /// Whether the containment holds.
    pub fn holds(&self) -> bool {
        matches!(self, Containment::Holds)
    }

    /// The counterexample, if the containment fails.
    pub fn counterexample(&self) -> Option<&[Symbol]> {
        match self {
            Containment::Holds => None,
            Containment::FailsWith(w) => Some(w),
        }
    }
}

/// Checks `L(a) ⊆ L(b)` for a DFA `a` and an NFA `b` **without** building the
/// complement of `b` explicitly.
///
/// The search explores pairs `(state of a, ε-closed subset of b's states)`
/// breadth-first from the initial configuration; a pair where `a` accepts but
/// the subset contains no accepting state of `b` yields a shortest
/// counterexample.  This is the on-the-fly strategy of Theorem 3.2.
pub fn dfa_subset_of_nfa(a: &Dfa, b: &Nfa) -> Containment {
    a.alphabet()
        .check_compatible(b.alphabet())
        .expect("containment over incompatible alphabets");
    // Only DFA states from which `a` can still accept matter: a word that has
    // entered a dead state of `a` can never become a counterexample, and
    // pruning those states keeps the product exploration proportional to the
    // *useful* part of `a` instead of to the full determinization of `b`.
    let live = a.coreachable_states();
    type Config = (StateId, BTreeSet<StateId>);
    let start: Config = (a.initial_state(), b.start_configuration());
    let violates =
        |c: &Config| a.is_final(c.0) && !c.1.iter().any(|&s| b.is_final(s));
    if violates(&start) {
        return Containment::FailsWith(Vec::new());
    }
    if !live.contains(&a.initial_state()) {
        // L(a) is empty; the containment holds vacuously.
        return Containment::Holds;
    }
    let mut seen: BTreeSet<Config> = BTreeSet::from([start.clone()]);
    let mut queue: VecDeque<(Config, Vec<Symbol>)> = VecDeque::from([(start, Vec::new())]);
    while let Some(((sa, cfg), word)) = queue.pop_front() {
        for sym in a.alphabet().symbols() {
            // A word that dies in `a` (or enters a dead state) is not in
            // L(a), so it can never produce a counterexample.
            let Some(ta) = a.next_state(sa, sym) else { continue };
            if !live.contains(&ta) {
                continue;
            }
            let stepped = b.epsilon_closure(&b.step(&cfg, sym));
            let next: Config = (ta, stepped);
            if seen.contains(&next) {
                continue;
            }
            let mut next_word = word.clone();
            next_word.push(sym);
            if violates(&next) {
                return Containment::FailsWith(next_word);
            }
            seen.insert(next.clone());
            queue.push_back((next, next_word));
        }
    }
    Containment::Holds
}

/// Explicit-complement variant of [`dfa_subset_of_nfa`]: determinizes `b`,
/// complements it, intersects with `a`, and checks emptiness.  Exponentially
/// more memory-hungry in the worst case; retained for the ablation benchmark.
pub fn dfa_subset_of_nfa_explicit(a: &Dfa, b: &Nfa) -> Containment {
    let b_det = determinize(b);
    let b_comp = b_det.complement();
    let product = intersect_dfa(a, &b_comp);
    match product.shortest_word() {
        None => Containment::Holds,
        Some(word) => Containment::FailsWith(word),
    }
}

/// Checks `L(a) ⊆ L(b)` for two NFAs by determinizing `a` and running the
/// on-the-fly check.
pub fn nfa_subset_of_nfa(a: &Nfa, b: &Nfa) -> Containment {
    dfa_subset_of_nfa(&determinize(a), b)
}

/// Checks `L(a) ⊆ L(b)` for two DFAs.
pub fn dfa_subset_of_dfa(a: &Dfa, b: &Dfa) -> Containment {
    dfa_subset_of_nfa(a, &Nfa::from_dfa(b))
}

/// Checks language equivalence of two NFAs, returning a counterexample from
/// whichever side breaks the symmetry.
pub fn nfa_equivalent(a: &Nfa, b: &Nfa) -> Containment {
    match nfa_subset_of_nfa(a, b) {
        Containment::Holds => nfa_subset_of_nfa(b, a),
        fail => fail,
    }
}

/// Checks language equivalence of two DFAs.
pub fn dfa_equivalent(a: &Dfa, b: &Dfa) -> Containment {
    match dfa_subset_of_dfa(a, b) {
        Containment::Holds => dfa_subset_of_dfa(b, a),
        fail => fail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::from_chars(['a', 'b']).unwrap()
    }

    fn w(alpha: &Alphabet, s: &str) -> Vec<Symbol> {
        alpha.word_from_str(s).unwrap()
    }

    #[test]
    fn subset_holds_for_sublanguage() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        // a·a ⊆ a*
        let small = determinize(&a_sym.concat(&a_sym));
        let big = a_sym.star();
        assert!(dfa_subset_of_nfa(&small, &big).holds());
        assert!(dfa_subset_of_nfa_explicit(&small, &big).holds());
    }

    #[test]
    fn subset_fails_with_shortest_counterexample() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b_sym = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        // a* ⊄ a·a* because of ε; counterexample is the empty word.
        let astar = determinize(&a_sym.star());
        let aplus = a_sym.concat(&a_sym.star());
        match dfa_subset_of_nfa(&astar, &aplus) {
            Containment::FailsWith(cex) => assert_eq!(cex, Vec::<Symbol>::new()),
            Containment::Holds => panic!("containment should fail"),
        }
        // (a+b) ⊄ a : counterexample is "b".
        let any = determinize(&a_sym.union(&b_sym));
        match dfa_subset_of_nfa(&any, &a_sym) {
            Containment::FailsWith(cex) => assert_eq!(cex, w(&alpha, "b")),
            Containment::Holds => panic!("containment should fail"),
        }
    }

    #[test]
    fn explicit_and_on_the_fly_agree() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b_sym = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        let cases = [
            (a_sym.concat(&b_sym).star(), a_sym.union(&b_sym).star()), // holds
            (a_sym.union(&b_sym).star(), a_sym.concat(&b_sym).star()), // fails
            (a_sym.star(), a_sym.star().concat(&b_sym.optional())),    // holds
        ];
        for (lhs, rhs) in cases {
            let lhs_d = determinize(&lhs);
            let lazy = dfa_subset_of_nfa(&lhs_d, &rhs);
            let explicit = dfa_subset_of_nfa_explicit(&lhs_d, &rhs);
            assert_eq!(lazy.holds(), explicit.holds());
        }
    }

    #[test]
    fn equivalence_of_different_constructions() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b_sym = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        // (a + b)* == (a*·b*)*
        let lhs = a_sym.union(&b_sym).star();
        let rhs = a_sym.star().concat(&b_sym.star()).star();
        assert!(nfa_equivalent(&lhs, &rhs).holds());
        // a·(b·a)* == (a·b)*·a
        let lhs = a_sym.concat(&b_sym.concat(&a_sym).star());
        let rhs = a_sym.concat(&b_sym).star().concat(&a_sym);
        assert!(nfa_equivalent(&lhs, &rhs).holds());
        // a* != b*
        assert!(!nfa_equivalent(&a_sym.star(), &b_sym.star()).holds());
    }

    #[test]
    fn dfa_equivalence_and_counterexamples() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let d1 = determinize(&a_sym.star());
        let d2 = determinize(&a_sym.plus());
        assert!(dfa_equivalent(&d1, &d1).holds());
        let result = dfa_equivalent(&d1, &d2);
        assert_eq!(result.counterexample(), Some(&[][..]));
    }

    #[test]
    fn empty_language_is_subset_of_everything() {
        let alpha = ab();
        let empty = Dfa::empty(alpha.clone());
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        assert!(dfa_subset_of_nfa(&empty, &a_sym).holds());
        assert!(dfa_subset_of_nfa(&empty, &Nfa::empty(alpha.clone())).holds());
        // Nothing but the empty language is a subset of the empty language.
        let nonempty = determinize(&a_sym);
        assert!(!dfa_subset_of_nfa(&nonempty, &Nfa::empty(alpha)).holds());
    }
}
