//! Language containment and equivalence checks.
//!
//! The exactness check of the paper (Theorem 2.3) reduces to a containment
//! test `L(A_d) ⊆ L(B)` where `B` is the (nondeterministic) expansion of the
//! rewriting.  Theorem 3.2 obtains the 2EXPSPACE upper bound by *not*
//! materializing the complement of `B` and instead exploring the product of
//! `A_d` with the lazily determinized `B` on the fly.  [`dfa_subset_of_nfa`]
//! implements exactly that strategy; [`dfa_subset_of_nfa_explicit`] is the
//! naive explicit-complement variant kept for the ablation benchmark (E11).

use std::rc::Rc;

use crate::alphabet::Symbol;
use crate::dense::{
    intern_visit, intern_visit_start, BitSet, ConfigVisitMap, DenseDfa, DenseNfa,
};
use crate::dense_ops::intersect_dense;
use crate::determinize::{determinize, determinize_to_dense, determinize_with_subsets_baseline};
use crate::dfa::Dfa;
use crate::nfa::Nfa;
use crate::product::intersect_dfa_baseline;

/// Outcome of a containment check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Containment {
    /// The containment holds.
    Holds,
    /// The containment fails; the word is a witness in the left language but
    /// not in the right one.
    FailsWith(Vec<Symbol>),
}

impl Containment {
    /// Whether the containment holds.
    pub fn holds(&self) -> bool {
        matches!(self, Containment::Holds)
    }

    /// The counterexample, if the containment fails.
    pub fn counterexample(&self) -> Option<&[Symbol]> {
        match self {
            Containment::Holds => None,
            Containment::FailsWith(w) => Some(w),
        }
    }
}

/// Checks `L(a) ⊆ L(b)` for a DFA `a` and an NFA `b` **without** building the
/// complement of `b` explicitly.
///
/// The search explores pairs `(state of a, ε-closed subset of b's states)`
/// breadth-first from the initial configuration; a pair where `a` accepts but
/// the subset contains no accepting state of `b` yields a shortest
/// counterexample.  This is the on-the-fly strategy of Theorem 3.2.
pub fn dfa_subset_of_nfa(a: &Dfa, b: &Nfa) -> Containment {
    dfa_subset_of_nfa_dense(&DenseDfa::from_dfa(a), &DenseNfa::from_nfa(b))
}

/// [`dfa_subset_of_nfa`] on already-frozen dense inputs — the form the
/// exactness check calls with automata that are already dense, skipping the
/// refreezing step.
pub fn dfa_subset_of_nfa_dense(da: &DenseDfa, db: &DenseNfa) -> Containment {
    da.alphabet()
        .check_compatible(db.alphabet())
        .expect("containment over incompatible alphabets");
    let k = da.num_symbols();

    // Only DFA states from which `a` can still accept matter: a word that has
    // entered a dead state of `a` can never become a counterexample, and
    // pruning those states keeps the product exploration proportional to the
    // *useful* part of `a` instead of to the full determinization of `b`.
    let live = da.coreachable();

    let start_cfg: Rc<[u32]> = db.start().into();
    let violates = |sa: u32, cfg: &[u32]| da.is_final(sa) && !db.any_final(cfg);
    if violates(da.initial(), &start_cfg) {
        return Containment::FailsWith(Vec::new());
    }
    if !live.contains(da.initial()) {
        // L(a) is empty; the containment holds vacuously.
        return Containment::Holds;
    }

    // BFS over (DFA state, ε-closed configuration) pairs in symbol order, so
    // the first violation yields a shortest (and lexicographically first)
    // counterexample — identical to the tree-based exploration it replaces.
    // Each distinct configuration is allocated once (`Rc<[u32]>` shared
    // between the interning map and the BFS nodes); `seen` maps it to the
    // bitset of DFA states it has been visited with, and the parent links
    // reconstruct the counterexample word without per-node word cloning.
    let mut configs: Vec<(u32, Rc<[u32]>)> = vec![(da.initial(), start_cfg.clone())];
    let mut parents: Vec<(usize, u32)> = vec![(usize::MAX, 0)];
    let mut seen = ConfigVisitMap::default();
    intern_visit_start(&mut seen, &start_cfg, da.initial(), da.num_states());

    let mut scratch = BitSet::new(db.num_states());
    let mut stepped: Vec<u32> = Vec::new();
    let rebuild_word = |parents: &[(usize, u32)], mut at: usize, last_sym: u32| {
        let mut word = vec![Symbol(last_sym)];
        while at != 0 {
            let (parent, sym) = parents[at];
            word.push(Symbol(sym));
            at = parent;
        }
        word.reverse();
        word
    };

    let mut cursor = 0;
    while cursor < configs.len() {
        let (sa, cfg) = configs[cursor].clone();
        for a_idx in 0..k {
            // A word that dies in `a` (or enters a dead state) is not in
            // L(a), so it can never produce a counterexample.
            let Some(ta) = da.next(sa, a_idx) else { continue };
            if !live.contains(ta) {
                continue;
            }
            db.step_closed(&cfg, a_idx, &mut scratch, &mut stepped);
            if let Some(canonical) = intern_visit(&mut seen, &stepped, ta, da.num_states()) {
                if violates(ta, &stepped) {
                    return Containment::FailsWith(rebuild_word(
                        &parents,
                        cursor,
                        a_idx as u32,
                    ));
                }
                configs.push((ta, canonical));
                parents.push((cursor, a_idx as u32));
            }
        }
        cursor += 1;
    }
    Containment::Holds
}

/// Explicit-complement variant of [`dfa_subset_of_nfa`]: determinizes `b`,
/// complements it, intersects with `a`, and checks emptiness.  Exponentially
/// more memory-hungry in the worst case; retained for the ablation benchmark.
///
/// The whole chain — subset construction, complement, product, shortest-word
/// BFS — runs on the dense core; the seed's tree chain is retained as
/// [`dfa_subset_of_nfa_explicit_baseline`].
pub fn dfa_subset_of_nfa_explicit(a: &Dfa, b: &Nfa) -> Containment {
    let b_comp = determinize_to_dense(&DenseNfa::from_nfa(b)).dfa.complement();
    let product = intersect_dense(&DenseDfa::from_dfa(a), &b_comp);
    match product.shortest_word() {
        None => Containment::Holds,
        Some(word) => Containment::FailsWith(word),
    }
}

/// The seed's tree-based explicit-complement containment, retained as the
/// differential baseline for the dense chain above.
pub fn dfa_subset_of_nfa_explicit_baseline(a: &Dfa, b: &Nfa) -> Containment {
    let b_det = determinize_with_subsets_baseline(b).dfa;
    let b_comp = b_det.complement();
    let product = intersect_dfa_baseline(a, &b_comp);
    match product.shortest_word() {
        None => Containment::Holds,
        Some(word) => Containment::FailsWith(word),
    }
}

/// Checks `L(a) ⊆ L(b)` for two NFAs by determinizing `a` and running the
/// on-the-fly check.
pub fn nfa_subset_of_nfa(a: &Nfa, b: &Nfa) -> Containment {
    dfa_subset_of_nfa(&determinize(a), b)
}

/// Checks `L(a) ⊆ L(b)` for two DFAs.
pub fn dfa_subset_of_dfa(a: &Dfa, b: &Dfa) -> Containment {
    dfa_subset_of_nfa(a, &Nfa::from_dfa(b))
}

/// Checks language equivalence of two NFAs, returning a counterexample from
/// whichever side breaks the symmetry.
pub fn nfa_equivalent(a: &Nfa, b: &Nfa) -> Containment {
    match nfa_subset_of_nfa(a, b) {
        Containment::Holds => nfa_subset_of_nfa(b, a),
        fail => fail,
    }
}

/// Checks language equivalence of two DFAs.
pub fn dfa_equivalent(a: &Dfa, b: &Dfa) -> Containment {
    match dfa_subset_of_dfa(a, b) {
        Containment::Holds => dfa_subset_of_dfa(b, a),
        fail => fail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::from_chars(['a', 'b']).unwrap()
    }

    fn w(alpha: &Alphabet, s: &str) -> Vec<Symbol> {
        alpha.word_from_str(s).unwrap()
    }

    #[test]
    fn subset_holds_for_sublanguage() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        // a·a ⊆ a*
        let small = determinize(&a_sym.concat(&a_sym));
        let big = a_sym.star();
        assert!(dfa_subset_of_nfa(&small, &big).holds());
        assert!(dfa_subset_of_nfa_explicit(&small, &big).holds());
    }

    #[test]
    fn subset_fails_with_shortest_counterexample() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b_sym = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        // a* ⊄ a·a* because of ε; counterexample is the empty word.
        let astar = determinize(&a_sym.star());
        let aplus = a_sym.concat(&a_sym.star());
        match dfa_subset_of_nfa(&astar, &aplus) {
            Containment::FailsWith(cex) => assert_eq!(cex, Vec::<Symbol>::new()),
            Containment::Holds => panic!("containment should fail"),
        }
        // (a+b) ⊄ a : counterexample is "b".
        let any = determinize(&a_sym.union(&b_sym));
        match dfa_subset_of_nfa(&any, &a_sym) {
            Containment::FailsWith(cex) => assert_eq!(cex, w(&alpha, "b")),
            Containment::Holds => panic!("containment should fail"),
        }
    }

    #[test]
    fn explicit_and_on_the_fly_agree() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b_sym = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        let cases = [
            (a_sym.concat(&b_sym).star(), a_sym.union(&b_sym).star()), // holds
            (a_sym.union(&b_sym).star(), a_sym.concat(&b_sym).star()), // fails
            (a_sym.star(), a_sym.star().concat(&b_sym.optional())),    // holds
        ];
        for (lhs, rhs) in cases {
            let lhs_d = determinize(&lhs);
            let lazy = dfa_subset_of_nfa(&lhs_d, &rhs);
            let explicit = dfa_subset_of_nfa_explicit(&lhs_d, &rhs);
            assert_eq!(lazy.holds(), explicit.holds());
        }
    }

    #[test]
    fn equivalence_of_different_constructions() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b_sym = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        // (a + b)* == (a*·b*)*
        let lhs = a_sym.union(&b_sym).star();
        let rhs = a_sym.star().concat(&b_sym.star()).star();
        assert!(nfa_equivalent(&lhs, &rhs).holds());
        // a·(b·a)* == (a·b)*·a
        let lhs = a_sym.concat(&b_sym.concat(&a_sym).star());
        let rhs = a_sym.concat(&b_sym).star().concat(&a_sym);
        assert!(nfa_equivalent(&lhs, &rhs).holds());
        // a* != b*
        assert!(!nfa_equivalent(&a_sym.star(), &b_sym.star()).holds());
    }

    #[test]
    fn dfa_equivalence_and_counterexamples() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let d1 = determinize(&a_sym.star());
        let d2 = determinize(&a_sym.plus());
        assert!(dfa_equivalent(&d1, &d1).holds());
        let result = dfa_equivalent(&d1, &d2);
        assert_eq!(result.counterexample(), Some(&[][..]));
    }

    #[test]
    fn empty_language_is_subset_of_everything() {
        let alpha = ab();
        let empty = Dfa::empty(alpha.clone());
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        assert!(dfa_subset_of_nfa(&empty, &a_sym).holds());
        assert!(dfa_subset_of_nfa(&empty, &Nfa::empty(alpha.clone())).holds());
        // Nothing but the empty language is a subset of the empty language.
        let nonempty = determinize(&a_sym);
        assert!(!dfa_subset_of_nfa(&nonempty, &Nfa::empty(alpha)).holds());
    }
}
