//! Interned alphabets and symbols.
//!
//! Every automaton in this workspace is defined over an [`Alphabet`]: an
//! ordered, interned set of symbol names.  Symbols are referenced by a compact
//! [`Symbol`] index so that transition tables stay small and comparisons are
//! cheap, while the human-readable names (e.g. `rome`, `restaurant`, or view
//! symbols such as `e1`) remain available for display, parsing, and DOT
//! export.
//!
//! Alphabets are cheap to clone (`Arc` internally) and two automata are
//! considered compatible when their alphabets contain the same names in the
//! same order.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A symbol of an [`Alphabet`], represented by its index.
///
/// A `Symbol` is only meaningful relative to the alphabet that produced it;
/// mixing symbols across alphabets is a logic error that the automaton
/// operations guard against by checking alphabet compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Returns the index of the symbol within its alphabet.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[derive(Debug, Default)]
struct AlphabetInner {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

/// An ordered, interned set of symbol names.
///
/// ```
/// use automata::Alphabet;
///
/// let ab = Alphabet::from_names(["a", "b", "c"]).unwrap();
/// assert_eq!(ab.len(), 3);
/// let a = ab.symbol("a").unwrap();
/// assert_eq!(ab.name(a), "a");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Alphabet {
    inner: Arc<AlphabetInner>,
}

/// Errors raised while building or combining alphabets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlphabetError {
    /// The same name was inserted twice.
    DuplicateName(String),
    /// A name was looked up that is not part of the alphabet.
    UnknownName(String),
    /// Two automata with incompatible alphabets were combined.
    Incompatible {
        /// Rendering of the left alphabet.
        left: String,
        /// Rendering of the right alphabet.
        right: String,
    },
}

impl fmt::Display for AlphabetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlphabetError::DuplicateName(n) => write!(f, "duplicate symbol name `{n}`"),
            AlphabetError::UnknownName(n) => write!(f, "unknown symbol name `{n}`"),
            AlphabetError::Incompatible { left, right } => {
                write!(f, "incompatible alphabets: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for AlphabetError {}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet from an ordered list of names.
    ///
    /// Fails with [`AlphabetError::DuplicateName`] if a name repeats.
    pub fn from_names<I, S>(names: I) -> Result<Self, AlphabetError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut inner = AlphabetInner::default();
        for name in names {
            let name = name.into();
            if inner.index.contains_key(&name) {
                return Err(AlphabetError::DuplicateName(name));
            }
            let id = inner.names.len() as u32;
            inner.index.insert(name.clone(), id);
            inner.names.push(name);
        }
        Ok(Self { inner: Arc::new(inner) })
    }

    /// Convenience constructor for single-character alphabets such as
    /// `a`, `b`, `c`.
    pub fn from_chars<I: IntoIterator<Item = char>>(chars: I) -> Result<Self, AlphabetError> {
        Self::from_names(chars.into_iter().map(|c| c.to_string()))
    }

    /// Number of symbols in the alphabet.
    pub fn len(&self) -> usize {
        self.inner.names.len()
    }

    /// Whether the alphabet has no symbols.
    pub fn is_empty(&self) -> bool {
        self.inner.names.is_empty()
    }

    /// Looks a symbol up by name.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.inner.index.get(name).map(|&i| Symbol(i))
    }

    /// Looks a symbol up by name, returning an error if absent.
    pub fn require(&self, name: &str) -> Result<Symbol, AlphabetError> {
        self.symbol(name)
            .ok_or_else(|| AlphabetError::UnknownName(name.to_string()))
    }

    /// Returns the name of a symbol.
    ///
    /// # Panics
    /// Panics if the symbol does not belong to this alphabet.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.inner.names[sym.index()]
    }

    /// Iterates over all symbols in index order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.len() as u32).map(Symbol)
    }

    /// Iterates over `(symbol, name)` pairs in index order.
    pub fn entries(&self) -> impl Iterator<Item = (Symbol, &str)> + '_ {
        self.inner
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }

    /// All names in index order.
    pub fn names(&self) -> impl Iterator<Item = &str> + '_ {
        self.inner.names.iter().map(String::as_str)
    }

    /// Whether two alphabets are compatible: same names in the same order.
    pub fn is_compatible(&self, other: &Alphabet) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.names == other.inner.names
    }

    /// Checks compatibility, returning a descriptive error if it fails.
    pub fn check_compatible(&self, other: &Alphabet) -> Result<(), AlphabetError> {
        if self.is_compatible(other) {
            Ok(())
        } else {
            Err(AlphabetError::Incompatible {
                left: self.render(),
                right: other.render(),
            })
        }
    }

    /// Builds a new alphabet that is the union of the two (self's order first,
    /// then symbols of `other` not already present).
    pub fn union(&self, other: &Alphabet) -> Alphabet {
        let mut names: Vec<String> = self.inner.names.clone();
        for n in &other.inner.names {
            if !self.inner.index.contains_key(n) {
                names.push(n.clone());
            }
        }
        Alphabet::from_names(names).expect("union preserves uniqueness")
    }

    /// Converts a sequence of names into a word of symbols.
    pub fn word(&self, names: &[&str]) -> Result<Vec<Symbol>, AlphabetError> {
        names.iter().map(|n| self.require(n)).collect()
    }

    /// Converts a string of single-character symbols into a word.
    pub fn word_from_str(&self, s: &str) -> Result<Vec<Symbol>, AlphabetError> {
        s.chars().map(|c| self.require(&c.to_string())).collect()
    }

    /// Renders a word of symbols as a dot-separated string of names.
    pub fn render_word(&self, word: &[Symbol]) -> String {
        if word.is_empty() {
            return "ε".to_string();
        }
        word.iter()
            .map(|&s| self.name(s))
            .collect::<Vec<_>>()
            .join("·")
    }

    /// Renders the alphabet as `{a, b, c}` for error messages.
    pub fn render(&self) -> String {
        format!("{{{}}}", self.inner.names.join(", "))
    }
}

impl PartialEq for Alphabet {
    fn eq(&self, other: &Self) -> bool {
        self.is_compatible(other)
    }
}

impl Eq for Alphabet {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_looks_up() {
        let ab = Alphabet::from_names(["a", "b", "rome"]).unwrap();
        assert_eq!(ab.len(), 3);
        assert!(!ab.is_empty());
        let rome = ab.symbol("rome").unwrap();
        assert_eq!(ab.name(rome), "rome");
        assert_eq!(rome.index(), 2);
        assert!(ab.symbol("paris").is_none());
    }

    #[test]
    fn rejects_duplicates() {
        let err = Alphabet::from_names(["a", "a"]).unwrap_err();
        assert_eq!(err, AlphabetError::DuplicateName("a".to_string()));
    }

    #[test]
    fn require_reports_unknown() {
        let ab = Alphabet::from_chars(['a']).unwrap();
        assert!(matches!(ab.require("z"), Err(AlphabetError::UnknownName(_))));
    }

    #[test]
    fn compatibility_by_content() {
        let a = Alphabet::from_chars(['a', 'b']).unwrap();
        let b = Alphabet::from_chars(['a', 'b']).unwrap();
        let c = Alphabet::from_chars(['b', 'a']).unwrap();
        assert!(a.is_compatible(&b));
        assert!(!a.is_compatible(&c));
        assert!(a.check_compatible(&c).is_err());
    }

    #[test]
    fn union_preserves_order() {
        let a = Alphabet::from_chars(['a', 'b']).unwrap();
        let b = Alphabet::from_chars(['b', 'c']).unwrap();
        let u = a.union(&b);
        let names: Vec<&str> = u.names().collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn words_and_rendering() {
        let ab = Alphabet::from_names(["a", "b"]).unwrap();
        let w = ab.word(&["a", "b", "a"]).unwrap();
        assert_eq!(ab.render_word(&w), "a·b·a");
        assert_eq!(ab.render_word(&[]), "ε");
        let w2 = ab.word_from_str("ab").unwrap();
        assert_eq!(w2.len(), 2);
        assert!(ab.word_from_str("az").is_err());
    }

    #[test]
    fn symbols_iterates_in_order() {
        let ab = Alphabet::from_chars(['x', 'y', 'z']).unwrap();
        let idx: Vec<usize> = ab.symbols().map(Symbol::index).collect();
        assert_eq!(idx, vec![0, 1, 2]);
        let entries: Vec<(usize, &str)> = ab.entries().map(|(s, n)| (s.index(), n)).collect();
        assert_eq!(entries, vec![(0, "x"), (1, "y"), (2, "z")]);
    }

    #[test]
    fn render_shows_braces() {
        let ab = Alphabet::from_chars(['a']).unwrap();
        assert_eq!(ab.render(), "{a}");
    }
}
