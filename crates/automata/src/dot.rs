//! Graphviz DOT rendering of automata, for documentation and debugging.
//!
//! The figures of the paper (in particular Figure 1: the deterministic query
//! automaton `A_d`, the view-alphabet automaton `A'`, and the rewriting
//! automaton) are easiest to inspect as rendered graphs; the experiment
//! binary dumps DOT next to its JSON results.

use std::fmt::Write as _;

use crate::dfa::Dfa;
use crate::nfa::Nfa;

/// Renders an NFA as a Graphviz DOT digraph.
pub fn nfa_to_dot(nfa: &Nfa, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    for s in 0..nfa.num_states() {
        let shape = if nfa.is_final(s) { "doublecircle" } else { "circle" };
        let _ = writeln!(out, "  s{s} [shape={shape}, label=\"s{s}\"];");
    }
    for (i, &s) in nfa.initial_states().iter().enumerate() {
        let _ = writeln!(out, "  init{i} [shape=point, style=invis];");
        let _ = writeln!(out, "  init{i} -> s{s};");
    }
    for (from, label, to) in nfa.transitions() {
        let label = match label {
            Some(sym) => escape(nfa.alphabet().name(sym)),
            None => "ε".to_string(),
        };
        let _ = writeln!(out, "  s{from} -> s{to} [label=\"{label}\"];");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a DFA as a Graphviz DOT digraph.
pub fn dfa_to_dot(dfa: &Dfa, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    for s in 0..dfa.num_states() {
        let shape = if dfa.is_final(s) { "doublecircle" } else { "circle" };
        let _ = writeln!(out, "  s{s} [shape={shape}, label=\"s{s}\"];");
    }
    let _ = writeln!(out, "  init [shape=point, style=invis];");
    let _ = writeln!(out, "  init -> s{};", dfa.initial_state());
    for (from, sym, to) in dfa.transitions() {
        let label = escape(dfa.alphabet().name(sym));
        let _ = writeln!(out, "  s{from} -> s{to} [label=\"{label}\"];");
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    #[test]
    fn nfa_dot_contains_states_and_edges() {
        let alpha = Alphabet::from_chars(['a']).unwrap();
        let nfa = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let dot = nfa_to_dot(&nfa, "test");
        assert!(dot.starts_with("digraph \"test\""));
        assert!(dot.contains("s0 -> s1 [label=\"a\"]"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dfa_dot_contains_initial_marker() {
        let alpha = Alphabet::from_chars(['a', 'b']).unwrap();
        let dfa = Dfa::universal(alpha);
        let dot = dfa_to_dot(&dfa, "univ");
        assert!(dot.contains("init -> s0"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
    }

    #[test]
    fn epsilon_edges_are_labeled() {
        let alpha = Alphabet::from_chars(['a']).unwrap();
        let mut nfa = Nfa::new(alpha);
        let s0 = nfa.add_state();
        let s1 = nfa.add_state();
        nfa.set_initial(s0);
        nfa.set_final(s1);
        nfa.add_epsilon(s0, s1);
        let dot = nfa_to_dot(&nfa, "eps");
        assert!(dot.contains("label=\"ε\""));
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let alpha = Alphabet::from_names(["a\"b"]).unwrap();
        let nfa = Nfa::symbol(alpha.clone(), alpha.symbol("a\"b").unwrap());
        let dot = nfa_to_dot(&nfa, "esc\"ape");
        assert!(dot.contains("a\\\"b"));
        assert!(dot.contains("esc\\\"ape"));
    }
}
