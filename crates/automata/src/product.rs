//! Product constructions and reachability relations.
//!
//! Two products matter for the paper:
//!
//! * the **intersection product** `A ∩ B` used to test, in step 2 of the
//!   rewriting construction, whether some word of a view language leads from
//!   state `s_i` to state `s_j` of the deterministic query automaton `A_d`
//!   (the product of `A_d^{i,j}` with the view automaton is checked for
//!   nonemptiness), and
//! * the [`word_reachability_relation`], a batched form of the same test that
//!   computes, for a fixed view `V`, *all* pairs `(s_i, s_j)` such that a word
//!   of `L(V)` drives `A_d` from `s_i` to `s_j` — this is ablation #4 of
//!   DESIGN.md and the default strategy of the rewriter.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use crate::alphabet::Symbol;
use crate::dense::{
    intern_visit, intern_visit_start, BitSet, ConfigVisitMap, DenseDfa, DenseNfa,
};
use crate::dense_ops::{intersect_dense, intersect_dfa_nfa_dense, union_dense};
use crate::dfa::Dfa;
use crate::nfa::{Nfa, StateId};

/// Intersection of two DFAs over the same alphabet: accepts `L(a) ∩ L(b)`.
///
/// Only the product states reachable from the pair of initial states are
/// materialized.  Runs on the dense core ([`intersect_dense`]), producing
/// the same automaton (state numbering included) as the retained
/// [`intersect_dfa_baseline`].
pub fn intersect_dfa(a: &Dfa, b: &Dfa) -> Dfa {
    intersect_dense(&DenseDfa::from_dfa(a), &DenseDfa::from_dfa(b)).to_dfa()
}

/// The seed's tree-based intersection product, retained as the differential
/// baseline for [`intersect_dense`].
pub fn intersect_dfa_baseline(a: &Dfa, b: &Dfa) -> Dfa {
    a.alphabet()
        .check_compatible(b.alphabet())
        .expect("intersection over incompatible alphabets");
    let mut index: BTreeMap<(StateId, StateId), usize> = BTreeMap::new();
    let mut states: Vec<(StateId, StateId)> = Vec::new();
    let mut transitions: Vec<(usize, Symbol, usize)> = Vec::new();

    let start = (a.initial_state(), b.initial_state());
    index.insert(start, 0);
    states.push(start);
    let mut queue = VecDeque::from([0usize]);

    while let Some(cur) = queue.pop_front() {
        let (sa, sb) = states[cur];
        for sym in a.alphabet().symbols() {
            let (Some(ta), Some(tb)) = (a.next_state(sa, sym), b.next_state(sb, sym)) else {
                continue;
            };
            let key = (ta, tb);
            let next = *index.entry(key).or_insert_with(|| {
                states.push(key);
                queue.push_back(states.len() - 1);
                states.len() - 1
            });
            transitions.push((cur, sym, next));
        }
    }

    let finals: Vec<usize> = states
        .iter()
        .enumerate()
        .filter(|(_, &(sa, sb))| a.is_final(sa) && b.is_final(sb))
        .map(|(i, _)| i)
        .collect();

    Dfa::from_parts(a.alphabet().clone(), states.len(), 0, finals, transitions)
}

/// Union of two DFAs over the same alphabet: accepts `L(a) ∪ L(b)`.
///
/// Built as a product over the completed automata so that a run may die in
/// one component while surviving in the other.  Runs on the dense core
/// ([`union_dense`]); structurally identical to [`union_dfa_baseline`].
pub fn union_dfa(a: &Dfa, b: &Dfa) -> Dfa {
    union_dense(&DenseDfa::from_dfa(a), &DenseDfa::from_dfa(b)).to_dfa()
}

/// The seed's tree-based union product, retained as the differential
/// baseline for [`union_dense`].
pub fn union_dfa_baseline(a: &Dfa, b: &Dfa) -> Dfa {
    a.alphabet()
        .check_compatible(b.alphabet())
        .expect("union over incompatible alphabets");
    let a = a.complete();
    let b = b.complete();
    let mut index: BTreeMap<(StateId, StateId), usize> = BTreeMap::new();
    let mut states: Vec<(StateId, StateId)> = Vec::new();
    let mut transitions: Vec<(usize, Symbol, usize)> = Vec::new();

    let start = (a.initial_state(), b.initial_state());
    index.insert(start, 0);
    states.push(start);
    let mut queue = VecDeque::from([0usize]);
    while let Some(cur) = queue.pop_front() {
        let (sa, sb) = states[cur];
        for sym in a.alphabet().symbols() {
            let ta = a.next_state(sa, sym).expect("complete");
            let tb = b.next_state(sb, sym).expect("complete");
            let key = (ta, tb);
            let next = *index.entry(key).or_insert_with(|| {
                states.push(key);
                queue.push_back(states.len() - 1);
                states.len() - 1
            });
            transitions.push((cur, sym, next));
        }
    }
    let finals: Vec<usize> = states
        .iter()
        .enumerate()
        .filter(|(_, &(sa, sb))| a.is_final(sa) || b.is_final(sb))
        .map(|(i, _)| i)
        .collect();
    Dfa::from_parts(a.alphabet().clone(), states.len(), 0, finals, transitions)
}

/// Intersection of a DFA and an NFA: accepts `L(a) ∩ L(b)` as an NFA.
///
/// Runs on the dense core ([`intersect_dfa_nfa_dense`]); structurally
/// identical to [`intersect_dfa_nfa_baseline`].
pub fn intersect_dfa_nfa(a: &Dfa, b: &Nfa) -> Nfa {
    intersect_dfa_nfa_dense(&DenseDfa::from_dfa(a), &DenseNfa::from_nfa(b)).to_nfa()
}

/// The seed's tree-based DFA × NFA product, retained as the differential
/// baseline for [`intersect_dfa_nfa_dense`].
pub fn intersect_dfa_nfa_baseline(a: &Dfa, b: &Nfa) -> Nfa {
    a.alphabet()
        .check_compatible(b.alphabet())
        .expect("intersection over incompatible alphabets");
    // Eliminate ε-moves of b by closing the step relation on the fly:
    // product states are (dfa state, nfa state) with nfa states taken from
    // ε-closed configurations.
    let mut out = Nfa::new(a.alphabet().clone());
    let mut index: BTreeMap<(StateId, StateId), StateId> = BTreeMap::new();
    let mut queue: VecDeque<(StateId, StateId)> = VecDeque::new();

    let b_start = b.start_configuration();
    for &nb in &b_start {
        let key = (a.initial_state(), nb);
        let s = out.add_state();
        index.insert(key, s);
        out.set_initial(s);
        queue.push_back(key);
    }

    while let Some((sa, sb)) = queue.pop_front() {
        let cur = index[&(sa, sb)];
        if a.is_final(sa) && b.is_final(sb) {
            out.set_final(cur);
        }
        for sym in a.alphabet().symbols() {
            let Some(ta) = a.next_state(sa, sym) else { continue };
            let mut targets = BTreeSet::new();
            for tb in b.successors(sb, sym) {
                targets.extend(b.epsilon_closure(&BTreeSet::from([tb])));
            }
            for tb in targets {
                let key = (ta, tb);
                let next = *index.entry(key).or_insert_with(|| {
                    let s = out.add_state();
                    queue.push_back(key);
                    s
                });
                out.add_transition(cur, sym, next);
            }
        }
    }
    out
}

/// Whether `L(a) ∩ L(b)` is nonempty, returning a witness word if so.
///
/// This is the emptiness test at the heart of step 2 of the rewriting
/// construction and of the exactness check; it never materializes more of the
/// product than reachability requires.
pub fn intersection_witness(a: &Dfa, b: &Nfa) -> Option<Vec<Symbol>> {
    intersection_witness_from(a, a.initial_state(), &|s| a.is_final(s), b)
}

/// Like [`intersection_witness`] but with an explicit start state and final
/// predicate for the DFA side — this is exactly the `A_d^{i,j}` trick of the
/// paper (the automaton `A_d` with initial state `s_i` and final state `s_j`).
pub fn intersection_witness_from(
    a: &Dfa,
    a_start: StateId,
    a_final: &dyn Fn(StateId) -> bool,
    b: &Nfa,
) -> Option<Vec<Symbol>> {
    a.alphabet()
        .check_compatible(b.alphabet())
        .expect("intersection over incompatible alphabets");
    // BFS over (dfa state, ε-closed nfa configuration set).  Configurations
    // are sets, which keeps the frontier small (this is the lazily
    // determinized product).
    type Config = (StateId, BTreeSet<StateId>);
    let start: Config = (a_start, b.start_configuration());
    let accepts = |c: &Config| a_final(c.0) && c.1.iter().any(|&s| b.is_final(s));
    if accepts(&start) {
        return Some(Vec::new());
    }
    let mut seen: BTreeSet<Config> = BTreeSet::from([start.clone()]);
    let mut queue: VecDeque<(Config, Vec<Symbol>)> = VecDeque::from([(start, Vec::new())]);
    while let Some(((sa, cfg), word)) = queue.pop_front() {
        for sym in a.alphabet().symbols() {
            let Some(ta) = a.next_state(sa, sym) else { continue };
            let stepped = b.epsilon_closure(&b.step(&cfg, sym));
            if stepped.is_empty() {
                continue;
            }
            let next: Config = (ta, stepped);
            if seen.contains(&next) {
                continue;
            }
            let mut next_word = word.clone();
            next_word.push(sym);
            if accepts(&next) {
                return Some(next_word);
            }
            seen.insert(next.clone());
            queue.push_back((next, next_word));
        }
    }
    None
}

/// For a deterministic automaton `dfa` and a view automaton `view` (an NFA
/// over the same alphabet), computes the relation
///
/// ```text
/// { (s_i, s_j)  |  ∃ w ∈ L(view) :  δ*(s_i, w) = s_j }
/// ```
///
/// i.e. all pairs of `dfa` states connected by some word of the view's
/// language.  This is the batched transition test used to build the rewriting
/// automaton `A'` (Section 2, step 2 of the construction).
pub fn word_reachability_relation(dfa: &Dfa, view: &Nfa) -> BTreeSet<(StateId, StateId)> {
    word_reachability_relation_dense(&DenseDfa::from_dfa(dfa), &DenseNfa::from_nfa(view))
        .into_iter()
        .map(|(si, sj)| (si as StateId, sj as StateId))
        .collect()
}

/// [`word_reachability_relation`] on already-frozen dense inputs — the form
/// the rewriting pipeline calls once per view with the dense `A_d` and the
/// frozen view automaton, skipping all per-view refreezing.
pub fn word_reachability_relation_dense(
    dense_dfa: &DenseDfa,
    dense_view: &DenseNfa,
) -> BTreeSet<(u32, u32)> {
    dense_dfa
        .alphabet()
        .check_compatible(dense_view.alphabet())
        .expect("reachability over incompatible alphabets");
    let k = dense_dfa.num_symbols();

    let mut relation = BTreeSet::new();
    let start_cfg: Rc<[u32]> = dense_view.start().into();

    // Scratch reused across every sweep: `seen` maps an ε-closed view
    // configuration (sorted member list) to the bitset of DFA states it has
    // been visited with, so the hot-path membership test allocates nothing;
    // each distinct configuration is allocated once and shared (`Rc`)
    // between the map and the BFS queue.
    let mut seen = ConfigVisitMap::default();
    let mut queue: VecDeque<(u32, Rc<[u32]>)> = VecDeque::new();
    let mut scratch = BitSet::new(dense_view.num_states());
    let mut stepped: Vec<u32> = Vec::new();
    let start_accepts = dense_view.any_final(&start_cfg);

    for si in 0..dense_dfa.num_states() as u32 {
        seen.clear();
        queue.clear();
        if start_accepts {
            relation.insert((si, si));
        }
        intern_visit_start(&mut seen, &start_cfg, si, dense_dfa.num_states());
        queue.push_back((si, start_cfg.clone()));
        while let Some((sa, cfg)) = queue.pop_front() {
            for a in 0..k {
                let Some(ta) = dense_dfa.next(sa, a) else { continue };
                dense_view.step_closed(&cfg, a, &mut scratch, &mut stepped);
                if stepped.is_empty() {
                    continue;
                }
                if let Some(canonical) =
                    intern_visit(&mut seen, &stepped, ta, dense_dfa.num_states())
                {
                    if dense_view.any_final(&stepped) {
                        relation.insert((si, ta));
                    }
                    queue.push_back((ta, canonical));
                }
            }
        }
    }
    relation
}

/// The seed's tree-based reachability sweep (`BTreeSet` configurations with
/// per-step ε-closure recomputation).  Retained as the differential baseline
/// for the dense sweep above; see the property tests and benchmarks.
pub fn word_reachability_relation_baseline(
    dfa: &Dfa,
    view: &Nfa,
) -> BTreeSet<(StateId, StateId)> {
    dfa.alphabet()
        .check_compatible(view.alphabet())
        .expect("reachability over incompatible alphabets");
    let mut relation = BTreeSet::new();
    let view_start = view.start_configuration();
    for si in 0..dfa.num_states() {
        // BFS over (dfa state, ε-closed view configuration) from (si, start).
        type Config = (StateId, BTreeSet<StateId>);
        let start: Config = (si, view_start.clone());
        let mut seen: BTreeSet<Config> = BTreeSet::from([start.clone()]);
        let mut queue: VecDeque<Config> = VecDeque::from([start.clone()]);
        let record = |cfg: &Config, relation: &mut BTreeSet<(StateId, StateId)>| {
            if cfg.1.iter().any(|&s| view.is_final(s)) {
                relation.insert((si, cfg.0));
            }
        };
        record(&start, &mut relation);
        while let Some((sa, cfg)) = queue.pop_front() {
            for sym in dfa.alphabet().symbols() {
                let Some(ta) = dfa.next_state(sa, sym) else { continue };
                let stepped = view.epsilon_closure(&view.step(&cfg, sym));
                if stepped.is_empty() {
                    continue;
                }
                let next: Config = (ta, stepped);
                if seen.insert(next.clone()) {
                    record(&next, &mut relation);
                    queue.push_back(next);
                }
            }
        }
    }
    relation
}

/// Per-pair variant of [`word_reachability_relation`]: tests a single
/// `(s_i, s_j)` pair by product emptiness.  Exposed so benchmarks can compare
/// the batched and per-pair strategies (ablation #4).
pub fn word_reaches(dfa: &Dfa, view: &Nfa, si: StateId, sj: StateId) -> bool {
    intersection_witness_from(dfa, si, &|s| s == sj, view).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::determinize::determinize;

    fn ab() -> Alphabet {
        Alphabet::from_chars(['a', 'b']).unwrap()
    }

    fn w(alpha: &Alphabet, s: &str) -> Vec<Symbol> {
        alpha.word_from_str(s).unwrap()
    }

    fn dfa_for(nfa: &Nfa) -> Dfa {
        determinize(nfa)
    }

    #[test]
    fn intersect_dfa_is_conjunction() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        // L1 = words starting with a; L2 = words ending with a.
        let l1 = dfa_for(&a_sym.concat(&Nfa::universal(alpha.clone())));
        let l2 = dfa_for(&Nfa::universal(alpha.clone()).concat(&a_sym));
        let both = intersect_dfa(&l1, &l2);
        assert!(both.accepts(&w(&alpha, "a")));
        assert!(both.accepts(&w(&alpha, "aba")));
        assert!(!both.accepts(&w(&alpha, "ab")));
        assert!(!both.accepts(&w(&alpha, "ba")));
        assert!(!both.accepts(&[]));
    }

    #[test]
    fn union_dfa_is_disjunction() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b_sym = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        let l1 = dfa_for(&a_sym); // {a}
        let l2 = dfa_for(&b_sym.concat(&b_sym)); // {bb}
        let either = union_dfa(&l1, &l2);
        assert!(either.accepts(&w(&alpha, "a")));
        assert!(either.accepts(&w(&alpha, "bb")));
        assert!(!either.accepts(&w(&alpha, "b")));
        assert!(!either.accepts(&w(&alpha, "ab")));
    }

    #[test]
    fn intersect_dfa_nfa_matches_dfa_intersection() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let starts_a = a_sym.concat(&Nfa::universal(alpha.clone()));
        let ends_a = Nfa::universal(alpha.clone()).concat(&a_sym);
        let product = intersect_dfa_nfa(&dfa_for(&starts_a), &ends_a);
        for word in ["a", "aa", "aba", "abba"] {
            assert!(product.accepts(&w(&alpha, word)), "{word}");
        }
        for word in ["", "b", "ab", "ba", "bab"] {
            assert!(!product.accepts(&w(&alpha, word)), "{word}");
        }
    }

    #[test]
    fn intersection_witness_finds_shortest() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b_sym = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        // L1 = a·b*, L2 = a*·b : intersection = {ab} ∪ ... shortest is "ab".
        let l1 = dfa_for(&a_sym.concat(&b_sym.star()));
        let l2 = a_sym.star().concat(&b_sym);
        let witness = intersection_witness(&l1, &l2).expect("nonempty");
        assert_eq!(witness, w(&alpha, "ab"));
        // Disjoint languages produce no witness.
        let l3 = b_sym.concat(&Nfa::universal(alpha.clone()));
        assert!(intersection_witness(&l1, &l3).is_none());
    }

    #[test]
    fn empty_word_witness_when_both_accept_epsilon() {
        let alpha = ab();
        let l1 = dfa_for(&Nfa::universal(alpha.clone()));
        let l2 = Nfa::epsilon(alpha.clone());
        assert_eq!(intersection_witness(&l1, &l2), Some(vec![]));
    }

    #[test]
    fn word_reachability_on_figure1_style_dfa() {
        // DFA for a·(b·a+c)*: states s0 --a--> s1, s1 --b--> s2, s2 --a--> s1,
        // s1 --c--> s1.  View a·c*·b should connect s0 to s2 (via a then b,
        // possibly with c's in between).
        let alpha = Alphabet::from_chars(['a', 'b', 'c']).unwrap();
        let a = alpha.symbol("a").unwrap();
        let b = alpha.symbol("b").unwrap();
        let c = alpha.symbol("c").unwrap();
        let dfa = Dfa::from_parts(
            alpha.clone(),
            3,
            0,
            [1],
            [(0, a, 1), (1, b, 2), (2, a, 1), (1, c, 1)],
        );
        let a_nfa = Nfa::symbol(alpha.clone(), a);
        let b_nfa = Nfa::symbol(alpha.clone(), b);
        let c_nfa = Nfa::symbol(alpha.clone(), c);
        let view2 = a_nfa.concat(&c_nfa.star()).concat(&b_nfa); // a·c*·b
        let rel = word_reachability_relation(&dfa, &view2);
        assert!(rel.contains(&(0, 2)));
        assert!(rel.contains(&(2, 2)));
        assert!(!rel.contains(&(0, 1)));
        // Per-pair variant agrees.
        for si in 0..3 {
            for sj in 0..3 {
                assert_eq!(
                    rel.contains(&(si, sj)),
                    word_reaches(&dfa, &view2, si, sj),
                    "pair ({si},{sj})"
                );
            }
        }
    }

    #[test]
    fn reachability_includes_epsilon_views() {
        // A view whose language contains ε connects every state to itself.
        let alpha = ab();
        let a = alpha.symbol("a").unwrap();
        let dfa = Dfa::from_parts(alpha.clone(), 2, 0, [1], [(0, a, 1)]);
        let view = Nfa::symbol(alpha.clone(), a).star(); // a* contains ε
        let rel = word_reachability_relation(&dfa, &view);
        assert!(rel.contains(&(0, 0)));
        assert!(rel.contains(&(1, 1)));
        assert!(rel.contains(&(0, 1)));
    }
}
