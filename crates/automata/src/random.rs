//! Random automaton generation for property tests and workload generators.
//!
//! Benchmarks E5/E9/E11 of DESIGN.md sweep over families of random queries
//! and views; this module provides seeded, reproducible generators for NFAs
//! and DFAs with controllable density.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::alphabet::Alphabet;
use crate::dfa::Dfa;
use crate::nfa::Nfa;

/// Parameters for random automaton generation.
#[derive(Debug, Clone)]
pub struct RandomAutomatonConfig {
    /// Number of states to generate.
    pub num_states: usize,
    /// Probability that any given `(state, symbol, state)` transition exists
    /// (for NFAs) or that a given `(state, symbol)` transition is defined
    /// (for DFAs).
    pub density: f64,
    /// Probability that a state is accepting.
    pub final_probability: f64,
}

impl Default for RandomAutomatonConfig {
    fn default() -> Self {
        Self {
            num_states: 6,
            density: 0.25,
            final_probability: 0.3,
        }
    }
}

/// Generates a random NFA with the given configuration, seeded for
/// reproducibility.  State 0 is always initial and at least one state is
/// accepting (so the language is "usually" nonempty, though dead transitions
/// may still make it empty).
pub fn random_nfa(alphabet: &Alphabet, config: &RandomAutomatonConfig, seed: u64) -> Nfa {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nfa = Nfa::new(alphabet.clone());
    let states = nfa.add_states(config.num_states.max(1));
    nfa.set_initial(states[0]);
    let mut any_final = false;
    for &s in &states {
        if rng.gen_bool(config.final_probability.clamp(0.0, 1.0)) {
            nfa.set_final(s);
            any_final = true;
        }
    }
    if !any_final {
        nfa.set_final(*states.last().unwrap());
    }
    for &from in &states {
        for sym in alphabet.symbols() {
            for &to in &states {
                if rng.gen_bool(config.density.clamp(0.0, 1.0)) {
                    nfa.add_transition(from, sym, to);
                }
            }
        }
    }
    nfa
}

/// Generates a random (partial) DFA with the given configuration.
pub fn random_dfa(alphabet: &Alphabet, config: &RandomAutomatonConfig, seed: u64) -> Dfa {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = config.num_states.max(1);
    let mut dfa = Dfa::new(alphabet.clone());
    for _ in 1..n {
        dfa.add_state(false);
    }
    let mut any_final = false;
    for s in 0..n {
        if rng.gen_bool(config.final_probability.clamp(0.0, 1.0)) {
            dfa.set_final(s, true);
            any_final = true;
        }
    }
    if !any_final {
        dfa.set_final(n - 1, true);
    }
    for s in 0..n {
        for sym in alphabet.symbols() {
            if rng.gen_bool(config.density.clamp(0.0, 1.0)) {
                let to = rng.gen_range(0..n);
                dfa.set_transition(s, sym, to);
            }
        }
    }
    dfa
}

/// Generates a random word of the given length over the alphabet.
pub fn random_word(
    alphabet: &Alphabet,
    len: usize,
    seed: u64,
) -> Vec<crate::alphabet::Symbol> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let idx = rng.gen_range(0..alphabet.len()) as u32;
            crate::alphabet::Symbol(idx)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::determinize::determinize;

    fn abc() -> Alphabet {
        Alphabet::from_chars(['a', 'b', 'c']).unwrap()
    }

    #[test]
    fn generation_is_reproducible() {
        let alpha = abc();
        let cfg = RandomAutomatonConfig::default();
        let n1 = random_nfa(&alpha, &cfg, 42);
        let n2 = random_nfa(&alpha, &cfg, 42);
        assert_eq!(n1.num_states(), n2.num_states());
        assert_eq!(n1.num_transitions(), n2.num_transitions());
        let d1 = random_dfa(&alpha, &cfg, 7);
        let d2 = random_dfa(&alpha, &cfg, 7);
        assert_eq!(d1.num_transitions(), d2.num_transitions());
    }

    #[test]
    fn different_seeds_usually_differ() {
        let alpha = abc();
        let cfg = RandomAutomatonConfig {
            num_states: 10,
            density: 0.3,
            final_probability: 0.4,
        };
        let n1 = random_nfa(&alpha, &cfg, 1);
        let n2 = random_nfa(&alpha, &cfg, 2);
        // Not a hard guarantee, but with 300 candidate transitions the chance
        // of identical draws is negligible.
        assert_ne!(n1.num_transitions(), 0);
        assert!(n1.num_transitions() != n2.num_transitions() || n1.num_states() == n2.num_states());
    }

    #[test]
    fn random_nfa_always_has_initial_and_final() {
        let alpha = abc();
        for seed in 0..20 {
            let cfg = RandomAutomatonConfig {
                num_states: 4,
                density: 0.1,
                final_probability: 0.0,
            };
            let nfa = random_nfa(&alpha, &cfg, seed);
            assert_eq!(nfa.initial_states().len(), 1);
            assert!(!nfa.final_states().is_empty());
        }
    }

    #[test]
    fn random_nfa_determinizes_consistently() {
        let alpha = abc();
        let cfg = RandomAutomatonConfig {
            num_states: 5,
            density: 0.3,
            final_probability: 0.3,
        };
        for seed in 0..10 {
            let nfa = random_nfa(&alpha, &cfg, seed);
            let dfa = determinize(&nfa);
            for wseed in 0..10 {
                let word = random_word(&alpha, (wseed % 6) as usize, wseed * 31 + seed);
                assert_eq!(nfa.accepts(&word), dfa.accepts(&word));
            }
        }
    }

    #[test]
    fn random_word_has_requested_length() {
        let alpha = abc();
        assert_eq!(random_word(&alpha, 0, 3).len(), 0);
        assert_eq!(random_word(&alpha, 17, 3).len(), 17);
        for sym in random_word(&alpha, 50, 9) {
            assert!(sym.index() < alpha.len());
        }
    }
}
