//! Dense automaton algorithms: minimization, products, complement.
//!
//! PR "dense end-to-end" ports the remaining tree algorithms onto the CSR
//! core: everything here consumes and produces [`DenseDfa`]/[`DenseNfa`]
//! directly, so the rewriting pipeline of `rewriter` never walks a
//! `BTreeMap`-based automaton on its hot path.
//!
//! * [`minimize_dense`] — Hopcroft's partition-refinement algorithm over a
//!   CSR reverse-transition table, `O(k·n·log n)` versus the seed's
//!   `O(k·n²)` Moore refinement.  Block numbering is canonicalized to
//!   first-occurrence-in-state-order, which makes the output *structurally
//!   identical* to the retained Moore baseline (`minimize_baseline`), not
//!   just language-equal — the differential tests rely on this.
//! * [`intersect_dense`] / [`union_dense`] / [`complement_dense`] — product
//!   constructions on flat next-state tables, discovering pairs breadth-first
//!   in symbol order exactly like the tree versions so state numbering
//!   coincides.
//! * [`intersect_dfa_nfa_dense`] — the lazily ε-closed DFA × NFA product,
//!   producing an ε-free [`DenseNfa`] natively.
//!
//! The tree-typed entry points in [`mod@crate::minimize`] and [`crate::product`]
//! are thin freeze → dense-op → thaw wrappers around these.

use std::collections::VecDeque;

use crate::dense::{DenseDfa, DenseNfa, FxHashMap, DEAD};

/// Minimizes a dense DFA with Hopcroft's algorithm: the result is the unique
/// smallest complete DFA for the same language, restricted to reachable
/// states, with blocks numbered by first occurrence in state order (matching
/// the Moore baseline structurally).
pub fn minimize_dense(dfa: &DenseDfa) -> DenseDfa {
    // Work on the reachable, complete automaton so the successor function is
    // total and unreachable states cannot pollute the partition.
    let dfa = dfa.trim_unreachable().complete();
    let n = dfa.num_states();
    let k = dfa.num_symbols();
    if n == 0 {
        return dfa;
    }

    // Reverse transition table in CSR layout, bucketed by (target, symbol):
    // one counting pass to size the buckets, one to fill them.
    let mut roffsets = vec![0u32; n * k + 1];
    for s in 0..n {
        for a in 0..k {
            let t = dfa.next_raw(s as u32, a) as usize;
            roffsets[t * k + a + 1] += 1;
        }
    }
    for i in 1..roffsets.len() {
        roffsets[i] += roffsets[i - 1];
    }
    let mut cursor = roffsets.clone();
    let mut rsources = vec![0u32; n * k];
    for s in 0..n {
        for a in 0..k {
            let t = dfa.next_raw(s as u32, a) as usize;
            let slot = &mut cursor[t * k + a];
            rsources[*slot as usize] = s as u32;
            *slot += 1;
        }
    }
    let preds = |t: usize, a: usize| {
        let lo = roffsets[t * k + a] as usize;
        let hi = roffsets[t * k + a + 1] as usize;
        &rsources[lo..hi]
    };

    // Refinable partition: `elems` holds the states grouped by block,
    // `pos[s]` is the index of `s` in `elems`, `blk[s]` its block, and
    // `start/len` delimit each block's segment of `elems`.
    let mut elems: Vec<u32> = Vec::with_capacity(n);
    let mut pos: Vec<u32> = vec![0; n];
    let mut blk: Vec<u32> = vec![0; n];
    let mut start: Vec<u32> = Vec::new();
    let mut len: Vec<u32> = Vec::new();

    let num_final = dfa.finals().iter().count();
    if num_final == 0 || num_final == n {
        // A single block: already stable (the quotient is one state), no
        // refinement needed.
        start.push(0);
        len.push(n as u32);
        elems.extend(0..n as u32);
        for (i, p) in pos.iter_mut().enumerate() {
            *p = i as u32;
        }
    } else {
        // Block 0 = whichever class contains state 0 (first occurrence),
        // block 1 = the other; final renumbering re-canonicalizes anyway.
        let zero_final = dfa.is_final(0);
        let mut grouped: Vec<u32> = (0..n as u32)
            .filter(|&s| dfa.is_final(s) == zero_final)
            .collect();
        let split_at = grouped.len() as u32;
        grouped.extend((0..n as u32).filter(|&s| dfa.is_final(s) != zero_final));
        for (i, &s) in grouped.iter().enumerate() {
            pos[s as usize] = i as u32;
            blk[s as usize] = u32::from(i as u32 >= split_at);
        }
        elems = grouped;
        start.extend([0, split_at]);
        len.extend([split_at, n as u32 - split_at]);
    }

    // Worklist of (block, symbol) splitters.  Pushing both initial blocks is
    // correct (Hopcroft's smaller-half rule is an optimization applied on
    // splits below); a single-block partition is already stable.
    let mut work: Vec<(u32, u32)> = Vec::new();
    let mut on_work = vec![false; n * k]; // indexed block * k + symbol
    if start.len() > 1 {
        for b in 0..start.len() as u32 {
            for a in 0..k as u32 {
                work.push((b, a));
                on_work[b as usize * k + a as usize] = true;
            }
        }
    }

    // Scratch for one refinement step.
    let mut moved: Vec<u32> = Vec::new(); // blocks touched this step
    let mut moved_count: Vec<u32> = vec![0; n]; // per block: states moved to front

    while let Some((b, a)) = work.pop() {
        on_work[b as usize * k + a as usize] = false;
        // Snapshot the splitter's members: splitting may reshuffle `elems`
        // inside block `b` itself.
        let members: Vec<u32> = {
            let lo = start[b as usize] as usize;
            let hi = lo + len[b as usize] as usize;
            elems[lo..hi].to_vec()
        };
        // X = δ⁻¹(B, a); move each x to the front of its block.
        moved.clear();
        for &m in &members {
            for &x in preds(m as usize, a as usize) {
                let y = blk[x as usize];
                if moved_count[y as usize] == 0 {
                    moved.push(y);
                }
                let dest = start[y as usize] + moved_count[y as usize];
                moved_count[y as usize] += 1;
                // Swap x into the front region of its block.
                let px = pos[x as usize];
                if px != dest {
                    let other = elems[dest as usize];
                    elems[dest as usize] = x;
                    elems[px as usize] = other;
                    pos[x as usize] = dest;
                    pos[other as usize] = px;
                }
            }
        }
        // Split every block whose front region is a proper subset.
        for &y in &moved {
            let m = moved_count[y as usize];
            moved_count[y as usize] = 0;
            if m == len[y as usize] {
                continue; // whole block hit: no split
            }
            // New block = the moved front region; `y` keeps the rest.
            let nb = start.len() as u32;
            start.push(start[y as usize]);
            len.push(m);
            start[y as usize] += m;
            len[y as usize] -= m;
            for i in start[nb as usize]..start[nb as usize] + m {
                blk[elems[i as usize] as usize] = nb;
            }
            for sym in 0..k as u32 {
                if on_work[y as usize * k + sym as usize] {
                    // (y, sym) already pending: its old extent is now covered
                    // by (rest of y, sym) + (nb, sym).
                    work.push((nb, sym));
                    on_work[nb as usize * k + sym as usize] = true;
                } else {
                    // Hopcroft's rule: the smaller half suffices.
                    let (small, small_len) = if m <= len[y as usize] {
                        (nb, m)
                    } else {
                        (y, len[y as usize])
                    };
                    debug_assert!(small_len > 0);
                    work.push((small, sym));
                    on_work[small as usize * k + sym as usize] = true;
                }
            }
        }
    }

    // Renumber blocks by first occurrence in state order — the numbering the
    // Moore baseline produces — and build the quotient table.
    let num_blocks = start.len();
    let mut renumber = vec![DEAD; num_blocks];
    let mut representative: Vec<u32> = Vec::with_capacity(num_blocks);
    for s in 0..n as u32 {
        let b = blk[s as usize] as usize;
        if renumber[b] == DEAD {
            renumber[b] = representative.len() as u32;
            representative.push(s);
        }
    }
    let mut table = Vec::with_capacity(num_blocks * k);
    let mut finals = Vec::new();
    for (nb, &rep) in representative.iter().enumerate() {
        for a in 0..k {
            let t = dfa.next_raw(rep, a);
            table.push(renumber[blk[t as usize] as usize]);
        }
        if dfa.is_final(rep) {
            finals.push(nb as u32);
        }
    }
    let quotient = DenseDfa::from_parts(
        dfa.alphabet().clone(),
        num_blocks,
        renumber[blk[dfa.initial() as usize] as usize],
        finals,
        table,
    );
    // The input was trimmed, so every block contains a reachable state and
    // the quotient is already trim; the call keeps parity with the baseline
    // (`build_quotient(..).trim_unreachable()`) at negligible cost.
    quotient.trim_unreachable()
}

/// Breadth-first pair interner shared by the product constructions: pairs
/// are numbered in discovery order (seeds first, then queue FIFO with
/// symbols ascending), exactly like the tree products, so the results
/// coincide structurally.
#[derive(Default)]
struct PairProduct {
    index: FxHashMap<(u32, u32), u32>,
    pairs: Vec<(u32, u32)>,
    queue: VecDeque<u32>,
}

impl PairProduct {
    fn seeded(seeds: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut product = PairProduct::default();
        for seed in seeds {
            product.intern(seed);
        }
        product
    }

    fn intern(&mut self, pair: (u32, u32)) -> u32 {
        match self.index.get(&pair) {
            Some(&id) => id,
            None => {
                let id = self.pairs.len() as u32;
                self.index.insert(pair, id);
                self.pairs.push(pair);
                self.queue.push_back(id);
                id
            }
        }
    }
}

/// Intersection of two dense DFAs over the same alphabet: accepts
/// `L(a) ∩ L(b)`.  Only product states reachable from the initial pair are
/// materialized; the result may be partial.
pub fn intersect_dense(a: &DenseDfa, b: &DenseDfa) -> DenseDfa {
    a.alphabet()
        .check_compatible(b.alphabet())
        .expect("intersection over incompatible alphabets");
    let k = a.num_symbols();
    let mut product = PairProduct::seeded([(a.initial(), b.initial())]);
    let mut table: Vec<u32> = vec![DEAD; k];
    while let Some(cur) = product.queue.pop_front() {
        let (sa, sb) = product.pairs[cur as usize];
        for sym in 0..k {
            let (ta, tb) = (a.next_raw(sa, sym), b.next_raw(sb, sym));
            if ta == DEAD || tb == DEAD {
                continue;
            }
            let next = product.intern((ta, tb));
            table.resize(table.len().max(product.pairs.len() * k), DEAD);
            table[cur as usize * k + sym] = next;
        }
    }
    let finals = product
        .pairs
        .iter()
        .enumerate()
        .filter(|&(_, &(sa, sb))| a.is_final(sa) && b.is_final(sb))
        .map(|(i, _)| i as u32);
    DenseDfa::from_parts(a.alphabet().clone(), product.pairs.len(), 0, finals, table)
}

/// Union of two dense DFAs over the same alphabet: accepts `L(a) ∪ L(b)`.
/// Built as a product over the completed automata so a run may die in one
/// component while surviving in the other.
pub fn union_dense(a: &DenseDfa, b: &DenseDfa) -> DenseDfa {
    a.alphabet()
        .check_compatible(b.alphabet())
        .expect("union over incompatible alphabets");
    let a = a.complete();
    let b = b.complete();
    let k = a.num_symbols();
    let mut product = PairProduct::seeded([(a.initial(), b.initial())]);
    let mut table: Vec<u32> = vec![DEAD; k];
    while let Some(cur) = product.queue.pop_front() {
        let (sa, sb) = product.pairs[cur as usize];
        for sym in 0..k {
            let (ta, tb) = (a.next_raw(sa, sym), b.next_raw(sb, sym));
            debug_assert!(ta != DEAD && tb != DEAD, "inputs completed above");
            let next = product.intern((ta, tb));
            table.resize(table.len().max(product.pairs.len() * k), DEAD);
            table[cur as usize * k + sym] = next;
        }
    }
    let finals = product
        .pairs
        .iter()
        .enumerate()
        .filter(|&(_, &(sa, sb))| a.is_final(sa) || b.is_final(sb))
        .map(|(i, _)| i as u32);
    DenseDfa::from_parts(a.alphabet().clone(), product.pairs.len(), 0, finals, table)
}

/// Complement of a dense DFA (complete, accepting states flipped).
pub fn complement_dense(dfa: &DenseDfa) -> DenseDfa {
    dfa.complement()
}

/// Intersection of a dense DFA and a dense NFA: accepts `L(a) ∩ L(b)` as an
/// ε-free [`DenseNfa`].  Product states are `(DFA state, NFA state)` pairs
/// with the NFA side drawn from ε-closed configurations (the closures are
/// already folded into `b`'s successor lists).
pub fn intersect_dfa_nfa_dense(a: &DenseDfa, b: &DenseNfa) -> DenseNfa {
    a.alphabet()
        .check_compatible(b.alphabet())
        .expect("intersection over incompatible alphabets");
    let k = a.num_symbols();
    // Initial product states: one per member of b's closed start
    // configuration (sorted), numbered first.
    let mut product = PairProduct::seeded(b.start().iter().map(|&nb| (a.initial(), nb)));
    let num_initials = product.pairs.len() as u32;
    let mut transitions: Vec<(u32, u32, u32)> = Vec::new();
    while let Some(cur) = product.queue.pop_front() {
        let (sa, sb) = product.pairs[cur as usize];
        for sym in 0..k {
            let ta = a.next_raw(sa, sym);
            if ta == DEAD {
                continue;
            }
            for &tb in b.closed_successors(sb, sym) {
                let next = product.intern((ta, tb));
                transitions.push((cur, sym as u32, next));
            }
        }
    }
    let finals = product
        .pairs
        .iter()
        .enumerate()
        .filter(|&(_, &(sa, sb))| a.is_final(sa) && b.is_final(sb))
        .map(|(i, _)| i as u32);
    DenseNfa::from_parts(
        a.alphabet().clone(),
        product.pairs.len(),
        0..num_initials,
        finals,
        transitions,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{Alphabet, Symbol};
    use crate::determinize::determinize;
    use crate::minimize::minimize_baseline;
    use crate::nfa::Nfa;

    fn ab() -> Alphabet {
        Alphabet::from_chars(['a', 'b']).unwrap()
    }

    fn w(alpha: &Alphabet, s: &str) -> Vec<Symbol> {
        alpha.word_from_str(s).unwrap()
    }

    fn dense(nfa: &Nfa) -> DenseDfa {
        DenseDfa::from_dfa(&determinize(nfa))
    }

    #[test]
    fn hopcroft_matches_moore_structurally() {
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        let cases = [
            a.concat(&b).union(&b.concat(&a)).star(),
            Nfa::universal(alpha.clone()).concat(&a).concat(&b),
            a.star().concat(&b.star()).star(),
            Nfa::empty(alpha.clone()),
            Nfa::epsilon(alpha.clone()),
        ];
        for nfa in cases {
            let tree = determinize(&nfa);
            let ours = minimize_dense(&DenseDfa::from_dfa(&tree));
            let moore = minimize_baseline(&tree);
            assert_eq!(ours.num_states(), moore.num_states());
            assert_eq!(ours.initial() as usize, moore.initial_state());
            for s in 0..ours.num_states() {
                assert_eq!(ours.is_final(s as u32), moore.is_final(s));
                for sym in alpha.symbols() {
                    assert_eq!(
                        ours.next(s as u32, sym.index()).map(|t| t as usize),
                        moore.next_state(s, sym),
                        "state {s} sym {sym}"
                    );
                }
            }
        }
    }

    #[test]
    fn minimize_dense_hits_canonical_sizes() {
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        // (a+b)*a(a+b)(a+b): canonical minimal DFA has 8 states.
        let nfa = Nfa::universal(alpha.clone())
            .concat(&a)
            .concat(&Nfa::any_symbol(alpha.clone()))
            .concat(&Nfa::any_symbol(alpha.clone()));
        let min = minimize_dense(&dense(&nfa));
        assert_eq!(min.num_states(), 8);
        assert!(min.is_complete());
    }

    #[test]
    fn dense_products_agree_with_membership() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let starts_a = dense(&a_sym.concat(&Nfa::universal(alpha.clone())));
        let ends_a = dense(&Nfa::universal(alpha.clone()).concat(&a_sym));
        let both = intersect_dense(&starts_a, &ends_a);
        let either = union_dense(&starts_a, &ends_a);
        let neither = complement_dense(&either);
        for word in ["", "a", "b", "ab", "ba", "aba", "bab", "abba"] {
            let word = w(&alpha, word);
            let sa = {
                let d = starts_a.to_dfa();
                d.accepts(&word)
            };
            let ea = ends_a.to_dfa().accepts(&word);
            assert_eq!(both.to_dfa().accepts(&word), sa && ea);
            assert_eq!(either.to_dfa().accepts(&word), sa || ea);
            assert_eq!(neither.to_dfa().accepts(&word), !(sa || ea));
        }
    }

    #[test]
    fn dfa_nfa_product_is_conjunction() {
        let alpha = ab();
        let a_sym = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let starts_a = dense(&a_sym.concat(&Nfa::universal(alpha.clone())));
        let ends_a = DenseNfa::from_nfa(&Nfa::universal(alpha.clone()).concat(&a_sym));
        let product = intersect_dfa_nfa_dense(&starts_a, &ends_a);
        for word in ["a", "aa", "aba", "abba"] {
            assert!(product.accepts(&w(&alpha, word)), "{word}");
        }
        for word in ["", "b", "ab", "ba", "bab"] {
            assert!(!product.accepts(&w(&alpha, word)), "{word}");
        }
        // Shortest witness of the intersection, via the thawed product.
        assert_eq!(product.to_nfa().shortest_word(), Some(w(&alpha, "a")));
    }
}
