//! # automata — finite-automata substrate for view-based rewriting
//!
//! This crate provides the automata-theoretic machinery that the rest of the
//! workspace builds on to reproduce Calvanese, De Giacomo, Lenzerini and
//! Vardi, *Rewriting of Regular Expressions and Regular Path Queries*
//! (PODS'99 / JCSS 2002):
//!
//! * interned [`Alphabet`]s and [`Symbol`]s,
//! * [`Nfa`]s with ε-moves and the usual rational operations,
//! * [`Dfa`]s with completion and complementation,
//! * the subset construction ([`fn@determinize`]) producing the deterministic
//!   query automaton `A_d` of the paper,
//! * DFA minimization ([`fn@minimize`]),
//! * product constructions and the [`word_reachability_relation`] used to
//!   build the rewriting automaton `A'`,
//! * on-the-fly containment checks ([`dfa_subset_of_nfa`]) implementing the
//!   complement-free strategy of Theorem 3.2,
//! * DOT export and seeded random generation for tests and benchmarks.
//!
//! ## Architecture: tree front end, dense core
//!
//! The crate deliberately splits construction from traversal:
//!
//! * [`Nfa`]/[`Dfa`] are the mutable, adjacency-map **construction** types.
//!   Rational operations (`union`, `concat`, `star`, …), view expansion in
//!   `rewriter`, and DOT export all work on them, and they remain the public
//!   API surface.
//! * [`dense::DenseNfa`]/[`dense::DenseDfa`] are frozen, flat **traversal**
//!   types: CSR successor arrays indexed by `(state, symbol)` with per-state
//!   ε-closures precomputed once and folded into the successor lists, plus
//!   `u64`-word [`dense::BitSet`]s for state sets.
//!
//! Conversion is two-way and cheap: freeze via [`dense::DenseNfa::from_nfa`]
//! / [`dense::DenseDfa::from_dfa`] (also `From<&Nfa>` / `From<&Dfa>`), thaw
//! via `DenseDfa::to_dfa` / `DenseNfa::to_nfa`, and build dense natively via
//! `from_parts`.  Every algorithm runs dense: [`fn@determinize`] /
//! [`determinize_to_dense`] intern sorted `Vec<u32>` subset keys straight
//! into a flat next-state table, [`fn@minimize`] is Hopcroft's partition
//! refinement over a CSR reverse-transition table
//! ([`dense_ops::minimize_dense`]), [`intersect_dfa`] / [`union_dfa`] /
//! [`intersect_dfa_nfa`] and complement are flat-table product
//! constructions ([`dense_ops`]), [`word_reachability_relation`] and
//! [`dfa_subset_of_nfa`] sweep (DFA state × ε-closed configuration)
//! products with bitset-backed visited maps, and `graphdb::eval_automaton`
//! runs a product-BFS over a CSR adjacency with a dense visited bitmap.
//! Callers in `regexlang`, `rewriter` and `rpq` keep passing tree automata;
//! the dense core produces *structurally identical* results (state
//! numbering included), enforced by differential property tests against the
//! retained `*_baseline` implementations.
//!
//! ## Quick example
//!
//! ```
//! use automata::{Alphabet, Nfa, determinize, minimize, dfa_subset_of_nfa};
//!
//! let alpha = Alphabet::from_chars(['a', 'b']).unwrap();
//! let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
//! let b = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
//!
//! // (a·b)* as an NFA, then as a minimal DFA.
//! let nfa = a.concat(&b).star();
//! let dfa = minimize(&determinize(&nfa));
//! assert!(dfa.accepts(&alpha.word(&["a", "b", "a", "b"]).unwrap()));
//!
//! // (a·b)* ⊆ (a+b)* — checked without materializing any complement.
//! let all = a.union(&b).star();
//! assert!(dfa_subset_of_nfa(&dfa, &all).holds());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod alphabet;
pub mod dense;
pub mod dense_ops;
pub mod determinize;
pub mod dfa;
pub mod dot;
pub mod equivalence;
pub mod minimize;
pub mod nfa;
pub mod product;
pub mod random;

pub use alphabet::{Alphabet, AlphabetError, Symbol};
pub use dense::{BitSet, DenseDfa, DenseNfa, DenseReverse};
pub use dense_ops::{
    complement_dense, intersect_dense, intersect_dfa_nfa_dense, minimize_dense, union_dense,
};
pub use determinize::{
    determinize, determinize_dense, determinize_to_dense, determinize_with_subsets,
    determinize_with_subsets_baseline, Determinized, DeterminizedDense,
};
pub use dfa::Dfa;
pub use dot::{dfa_to_dot, nfa_to_dot};
pub use equivalence::{
    dfa_equivalent, dfa_subset_of_dfa, dfa_subset_of_nfa, dfa_subset_of_nfa_dense,
    dfa_subset_of_nfa_explicit, dfa_subset_of_nfa_explicit_baseline, nfa_equivalent,
    nfa_subset_of_nfa, Containment,
};
pub use minimize::{minimize, minimize_baseline};
pub use nfa::{Nfa, StateId};
pub use product::{
    intersect_dfa, intersect_dfa_baseline, intersect_dfa_nfa, intersect_dfa_nfa_baseline,
    intersection_witness, intersection_witness_from, union_dfa, union_dfa_baseline,
    word_reachability_relation, word_reachability_relation_baseline,
    word_reachability_relation_dense, word_reaches,
};
pub use random::{random_dfa, random_nfa, random_word, RandomAutomatonConfig};
