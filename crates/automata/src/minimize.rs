//! DFA minimization.
//!
//! Minimizing the deterministic query automaton `A_d` before building the
//! rewriting automaton `A'` (ablation #3 of DESIGN.md) shrinks both the state
//! space of the rewriting and the number of per-view reachability tests, so
//! the rewriter exposes it as an optional preprocessing step.  Minimal DFAs
//! are also canonical (up to isomorphism), which the equivalence tests rely
//! on.
//!
//! The default [`minimize`] freezes the automaton and runs Hopcroft's
//! `O(k·n·log n)` partition refinement on the CSR core
//! ([`crate::dense_ops::minimize_dense`]), which is what the larger
//! lower-bound instances of §3 need.  The seed's `O(k·n²)` Moore refinement
//! is retained as [`minimize_baseline`]: the dense path produces a
//! *structurally identical* automaton (first-occurrence block numbering),
//! and the differential tests pin the two against each other.

use std::collections::BTreeMap;

use crate::dense::DenseDfa;
use crate::dense_ops::minimize_dense;
use crate::dfa::Dfa;
use crate::nfa::StateId;

/// Minimizes a DFA: the result is the unique (up to isomorphism) smallest
/// complete DFA for the same language, restricted to reachable states.
///
/// Runs Hopcroft's algorithm on the dense core; structurally identical to
/// [`minimize_baseline`].
pub fn minimize(dfa: &Dfa) -> Dfa {
    minimize_dense(&DenseDfa::from_dfa(dfa)).to_dfa()
}

/// The seed's tree-based Moore refinement, retained as the differential
/// baseline for the Hopcroft implementation on the dense core.
pub fn minimize_baseline(dfa: &Dfa) -> Dfa {
    // Work on the reachable, complete automaton so the successor function is
    // total and unreachable states cannot pollute the partition.
    let dfa = dfa.trim_unreachable().complete();
    let n = dfa.num_states();
    if n == 0 {
        return dfa;
    }
    let alphabet = dfa.alphabet().clone();

    // block[s] = index of the partition block containing s.
    // Initial partition: accepting (1) vs non-accepting (0).
    let mut block: Vec<usize> = (0..n).map(|s| usize::from(dfa.is_final(s))).collect();
    let mut num_blocks = if dfa.final_states().is_empty() || dfa.final_states().len() == n {
        1
    } else {
        2
    };
    if num_blocks == 1 {
        // Normalize all block ids to 0.
        block.iter_mut().for_each(|b| *b = 0);
    }

    loop {
        // Signature of a state: (its block, the block of each successor).
        let mut sig_index: BTreeMap<(usize, Vec<usize>), usize> = BTreeMap::new();
        let mut new_block = vec![0usize; n];
        for s in 0..n {
            let succ_blocks: Vec<usize> = alphabet
                .symbols()
                .map(|sym| block[dfa.next_state(s, sym).expect("complete DFA")])
                .collect();
            let key = (block[s], succ_blocks);
            let next = sig_index.len();
            let id = *sig_index.entry(key).or_insert(next);
            new_block[s] = id;
        }
        let new_num_blocks = sig_index.len();
        block = new_block;
        if new_num_blocks == num_blocks {
            break;
        }
        num_blocks = new_num_blocks;
    }

    build_quotient(&dfa, &block, num_blocks)
}

/// Builds the quotient automaton given the block assignment of every state.
fn build_quotient(dfa: &Dfa, block: &[usize], num_blocks: usize) -> Dfa {
    let initial = block[dfa.initial_state()];
    let mut transitions: BTreeMap<(usize, crate::alphabet::Symbol), usize> = BTreeMap::new();
    for (from, sym, to) in dfa.transitions() {
        transitions.insert((block[from], sym), block[to]);
    }
    let finals: Vec<StateId> = dfa.final_states().iter().map(|&s| block[s]).collect();
    let quotient = Dfa::from_parts(
        dfa.alphabet().clone(),
        num_blocks,
        initial,
        finals,
        transitions.iter().map(|(&(f, s), &t)| (f, s, t)),
    );
    quotient.trim_unreachable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{Alphabet, Symbol};
    use crate::determinize::determinize;
    use crate::nfa::Nfa;

    fn ab() -> Alphabet {
        Alphabet::from_chars(['a', 'b']).unwrap()
    }

    fn w(alpha: &Alphabet, s: &str) -> Vec<Symbol> {
        alpha.word_from_str(s).unwrap()
    }

    #[test]
    fn minimize_preserves_language_on_samples() {
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        // (ab + ba)* — regular structure with mergeable states after subset
        // construction.
        let nfa = a.concat(&b).union(&b.concat(&a)).star();
        let dfa = determinize(&nfa);
        let min = minimize(&dfa);
        assert!(min.num_states() <= dfa.num_states());
        for word in ["", "ab", "ba", "abba", "abab", "baab", "a", "b", "aab", "bb"] {
            let word = w(&alpha, word);
            assert_eq!(dfa.accepts(&word), min.accepts(&word), "{word:?}");
        }
    }

    #[test]
    fn minimize_collapses_redundant_states() {
        // Two copies of the same a-loop accepting state should merge.
        let alpha = Alphabet::from_chars(['a']).unwrap();
        let a = alpha.symbol("a").unwrap();
        // states 0 -a-> 1 -a-> 2 -a-> 1 ; finals {1, 2} — language a·a* = a+
        let dfa = Dfa::from_parts(alpha.clone(), 3, 0, [1, 2], [(0, a, 1), (1, a, 2), (2, a, 1)]);
        let min = minimize(&dfa);
        // Minimal complete DFA for a+ over {a} has 2 states.
        assert_eq!(min.num_states(), 2);
        assert!(!min.accepts(&[]));
        assert!(min.accepts(&[a]));
        assert!(min.accepts(&[a, a, a]));
    }

    #[test]
    fn minimize_empty_language() {
        let alpha = ab();
        let min = minimize(&Dfa::empty(alpha));
        assert!(min.is_empty_language());
        assert!(min.num_states() <= 1);
    }

    #[test]
    fn minimize_universal_language() {
        let alpha = ab();
        let min = minimize(&Dfa::universal(alpha));
        assert!(min.is_universal_language());
        assert_eq!(min.num_states(), 1);
    }

    #[test]
    fn minimal_dfa_has_canonical_size() {
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let nfa = Nfa::universal(alpha.clone())
            .concat(&a)
            .concat(&Nfa::any_symbol(alpha.clone()))
            .concat(&Nfa::any_symbol(alpha.clone()));
        let dfa = determinize(&nfa);
        let min = minimize(&dfa);
        assert!(min.num_states() <= dfa.num_states());
        // The canonical minimal DFA for (a+b)*a(a+b)(a+b) has 8 states
        // (it must remember the last three symbols).
        assert_eq!(min.num_states(), 8);
    }

    #[test]
    fn minimize_is_idempotent() {
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        let nfa = a.union(&b.concat(&a).star()).concat(&b.optional());
        let min1 = minimize(&determinize(&nfa));
        let min2 = minimize(&min1);
        assert_eq!(min1.num_states(), min2.num_states());
        assert_eq!(min1.num_transitions(), min2.num_transitions());
    }

    #[test]
    fn equivalent_regexes_minimize_to_same_size() {
        // a·(b·a)* and (a·b)*·a denote the same language; their minimal DFAs
        // must therefore be isomorphic (same number of states).
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        let lhs = a.concat(&b.concat(&a).star());
        let rhs = a.concat(&b).star().concat(&a);
        let m1 = minimize(&determinize(&lhs));
        let m2 = minimize(&determinize(&rhs));
        assert_eq!(m1.num_states(), m2.num_states());
    }
}
