//! Nondeterministic finite automata with ε-moves.
//!
//! [`Nfa`] is the workhorse representation used when translating regular
//! expressions (`regexlang`'s Thompson/Glushkov constructions produce NFAs)
//! and when building the expansion automaton `B` of the exactness check of
//! the paper (Section 2, Theorem 2.3), where view edges are replaced by fresh
//! copies of the view automata.
//!
//! The representation is adjacency-list based: for every state we keep a map
//! from `Option<Symbol>` (where `None` is ε) to the set of successor states.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::alphabet::{Alphabet, Symbol};
use crate::dfa::Dfa;

/// State identifier within a single automaton.
pub type StateId = usize;

/// A nondeterministic finite automaton with ε-transitions.
#[derive(Debug, Clone)]
pub struct Nfa {
    alphabet: Alphabet,
    /// transitions[s][label] = set of successors; label `None` means ε.
    transitions: Vec<BTreeMap<Option<Symbol>, BTreeSet<StateId>>>,
    initial: BTreeSet<StateId>,
    finals: BTreeSet<StateId>,
}

impl Nfa {
    /// Creates an empty automaton (no states, empty language) over `alphabet`.
    pub fn new(alphabet: Alphabet) -> Self {
        Self {
            alphabet,
            transitions: Vec::new(),
            initial: BTreeSet::new(),
            finals: BTreeSet::new(),
        }
    }

    /// The automaton accepting the empty language ∅.
    pub fn empty(alphabet: Alphabet) -> Self {
        Self::new(alphabet)
    }

    /// The automaton accepting exactly the empty word ε.
    pub fn epsilon(alphabet: Alphabet) -> Self {
        let mut nfa = Self::new(alphabet);
        let s = nfa.add_state();
        nfa.set_initial(s);
        nfa.set_final(s);
        nfa
    }

    /// The automaton accepting exactly the one-letter word `sym`.
    pub fn symbol(alphabet: Alphabet, sym: Symbol) -> Self {
        let mut nfa = Self::new(alphabet);
        let s0 = nfa.add_state();
        let s1 = nfa.add_state();
        nfa.set_initial(s0);
        nfa.set_final(s1);
        nfa.add_transition(s0, sym, s1);
        nfa
    }

    /// The automaton accepting exactly the given word.
    pub fn word(alphabet: Alphabet, word: &[Symbol]) -> Self {
        let mut nfa = Self::new(alphabet);
        let mut prev = nfa.add_state();
        nfa.set_initial(prev);
        for &sym in word {
            let next = nfa.add_state();
            nfa.add_transition(prev, sym, next);
            prev = next;
        }
        nfa.set_final(prev);
        nfa
    }

    /// The automaton accepting all one-letter words (Σ itself).
    pub fn any_symbol(alphabet: Alphabet) -> Self {
        let mut nfa = Self::new(alphabet.clone());
        let s0 = nfa.add_state();
        let s1 = nfa.add_state();
        nfa.set_initial(s0);
        nfa.set_final(s1);
        for sym in alphabet.symbols() {
            nfa.add_transition(s0, sym, s1);
        }
        nfa
    }

    /// The automaton accepting Σ* (all words).
    pub fn universal(alphabet: Alphabet) -> Self {
        let mut nfa = Self::new(alphabet.clone());
        let s = nfa.add_state();
        nfa.set_initial(s);
        nfa.set_final(s);
        for sym in alphabet.symbols() {
            nfa.add_transition(s, sym, s);
        }
        nfa
    }

    /// The alphabet of the automaton.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Total number of transitions (each `(state, label, successor)` triple).
    pub fn num_transitions(&self) -> usize {
        self.transitions
            .iter()
            .map(|m| m.values().map(BTreeSet::len).sum::<usize>())
            .sum()
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.transitions.push(BTreeMap::new());
        self.transitions.len() - 1
    }

    /// Adds `n` fresh states and returns their ids.
    pub fn add_states(&mut self, n: usize) -> Vec<StateId> {
        (0..n).map(|_| self.add_state()).collect()
    }

    /// Marks a state as initial.
    pub fn set_initial(&mut self, s: StateId) {
        assert!(s < self.num_states(), "state {s} out of range");
        self.initial.insert(s);
    }

    /// Marks a state as final (accepting).
    pub fn set_final(&mut self, s: StateId) {
        assert!(s < self.num_states(), "state {s} out of range");
        self.finals.insert(s);
    }

    /// Removes a state from the final set.
    pub fn clear_final(&mut self, s: StateId) {
        self.finals.remove(&s);
    }

    /// Adds a labeled transition.
    pub fn add_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        assert!(from < self.num_states() && to < self.num_states());
        assert!(
            sym.index() < self.alphabet.len(),
            "symbol {sym} not in alphabet {}",
            self.alphabet.render()
        );
        self.transitions[from].entry(Some(sym)).or_default().insert(to);
    }

    /// Adds an ε-transition.
    pub fn add_epsilon(&mut self, from: StateId, to: StateId) {
        assert!(from < self.num_states() && to < self.num_states());
        self.transitions[from].entry(None).or_default().insert(to);
    }

    /// Set of initial states.
    pub fn initial_states(&self) -> &BTreeSet<StateId> {
        &self.initial
    }

    /// Set of final states.
    pub fn final_states(&self) -> &BTreeSet<StateId> {
        &self.finals
    }

    /// Whether `s` is a final state.
    pub fn is_final(&self, s: StateId) -> bool {
        self.finals.contains(&s)
    }

    /// Successors of `s` under label `sym`.
    pub fn successors(&self, s: StateId, sym: Symbol) -> impl Iterator<Item = StateId> + '_ {
        self.transitions[s]
            .get(&Some(sym))
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// ε-successors of `s`.
    pub fn epsilon_successors(&self, s: StateId) -> impl Iterator<Item = StateId> + '_ {
        self.transitions[s]
            .get(&None)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Iterates over all transitions as `(from, label, to)` triples.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Option<Symbol>, StateId)> + '_ {
        self.transitions.iter().enumerate().flat_map(|(from, m)| {
            m.iter()
                .flat_map(move |(&label, tos)| tos.iter().map(move |&to| (from, label, to)))
        })
    }

    /// ε-closure of a set of states.
    pub fn epsilon_closure(&self, states: &BTreeSet<StateId>) -> BTreeSet<StateId> {
        let mut closure = states.clone();
        let mut queue: VecDeque<StateId> = states.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            for t in self.epsilon_successors(s) {
                if closure.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        closure
    }

    /// Single-symbol step of a set of states (without closing under ε; callers
    /// typically compose this with [`Nfa::epsilon_closure`]).
    pub fn step(&self, states: &BTreeSet<StateId>, sym: Symbol) -> BTreeSet<StateId> {
        let mut out = BTreeSet::new();
        for &s in states {
            out.extend(self.successors(s, sym));
        }
        out
    }

    /// The closed initial configuration: ε-closure of the initial states.
    pub fn start_configuration(&self) -> BTreeSet<StateId> {
        self.epsilon_closure(&self.initial)
    }

    /// Whether the automaton accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut current = self.start_configuration();
        for &sym in word {
            if current.is_empty() {
                return false;
            }
            current = self.epsilon_closure(&self.step(&current, sym));
        }
        current.iter().any(|s| self.finals.contains(s))
    }

    /// Whether the automaton accepts the word written as symbol names.
    pub fn accepts_names(&self, names: &[&str]) -> bool {
        match self.alphabet.word(names) {
            Ok(w) => self.accepts(&w),
            Err(_) => false,
        }
    }

    /// States reachable from the initial states (following any transition).
    pub fn reachable_states(&self) -> BTreeSet<StateId> {
        let mut seen: BTreeSet<StateId> = self.initial.clone();
        let mut queue: VecDeque<StateId> = self.initial.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            for tos in self.transitions[s].values() {
                for &t in tos {
                    if seen.insert(t) {
                        queue.push_back(t);
                    }
                }
            }
        }
        seen
    }

    /// States from which a final state is reachable (co-reachable / productive).
    pub fn coreachable_states(&self) -> BTreeSet<StateId> {
        // Build reverse adjacency.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); self.num_states()];
        for (from, _, to) in self.transitions() {
            rev[to].push(from);
        }
        let mut seen: BTreeSet<StateId> = self.finals.clone();
        let mut queue: VecDeque<StateId> = self.finals.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            for &p in &rev[s] {
                if seen.insert(p) {
                    queue.push_back(p);
                }
            }
        }
        seen
    }

    /// Removes states that are not both reachable and co-reachable, renumbering
    /// the remaining states.  The resulting automaton accepts the same
    /// language and is *trim*.
    pub fn trim(&self) -> Nfa {
        let reach = self.reachable_states();
        let coreach = self.coreachable_states();
        let keep: Vec<StateId> = (0..self.num_states())
            .filter(|s| reach.contains(s) && coreach.contains(s))
            .collect();
        let mut remap: Vec<Option<StateId>> = vec![None; self.num_states()];
        let mut out = Nfa::new(self.alphabet.clone());
        for &s in &keep {
            remap[s] = Some(out.add_state());
        }
        for &s in &keep {
            let ns = remap[s].unwrap();
            if self.initial.contains(&s) {
                out.set_initial(ns);
            }
            if self.finals.contains(&s) {
                out.set_final(ns);
            }
            for (&label, tos) in &self.transitions[s] {
                for &t in tos {
                    if let Some(nt) = remap[t] {
                        match label {
                            Some(sym) => out.add_transition(ns, sym, nt),
                            None => out.add_epsilon(ns, nt),
                        }
                    }
                }
            }
        }
        out
    }

    /// Whether the language of the automaton is empty.
    pub fn is_empty_language(&self) -> bool {
        let reach = self.reachable_states();
        !reach.iter().any(|s| self.finals.contains(s))
    }

    /// A shortest accepted word, if the language is nonempty.
    pub fn shortest_word(&self) -> Option<Vec<Symbol>> {
        // BFS over states, tracking the symbol-labeled predecessor edges.
        // ε-edges contribute no symbol.
        /// Predecessor record of a BFS-visited state: reached either through
        /// a symbol edge `(from, symbol)` or through an ε edge from `from`.
        type Predecessor = (Option<(StateId, Symbol)>, Option<StateId>);
        let mut dist: Vec<Option<Predecessor>> = vec![None; self.num_states()];
        let mut queue = VecDeque::new();
        for &s in &self.initial {
            dist[s] = Some((None, None));
            queue.push_back(s);
        }
        // BFS where ε edges have weight 0 is not a plain BFS; use 0-1 BFS.
        let mut deque: VecDeque<StateId> = queue;
        let mut best_len: Vec<usize> = vec![usize::MAX; self.num_states()];
        for &s in &self.initial {
            best_len[s] = 0;
        }
        while let Some(s) = deque.pop_front() {
            let len_s = best_len[s];
            for (&label, tos) in &self.transitions[s] {
                for &t in tos {
                    let (step, front) = match label {
                        None => (0usize, true),
                        Some(_) => (1usize, false),
                    };
                    if len_s + step < best_len[t] {
                        best_len[t] = len_s + step;
                        dist[t] = Some((label.map(|sym| (s, sym)), if label.is_none() { Some(s) } else { None }));
                        if front {
                            deque.push_front(t);
                        } else {
                            deque.push_back(t);
                        }
                    }
                }
            }
        }
        let target = self
            .finals
            .iter()
            .copied()
            .filter(|&s| best_len[s] != usize::MAX)
            .min_by_key(|&s| best_len[s])?;
        // Reconstruct.
        let mut word = Vec::new();
        let mut cur = target;
        loop {
            match dist[cur] {
                Some((Some((prev, sym)), _)) => {
                    word.push(sym);
                    cur = prev;
                }
                Some((None, Some(prev))) => {
                    cur = prev;
                }
                Some((None, None)) => break,
                None => return None,
            }
        }
        word.reverse();
        Some(word)
    }

    /// Language union: accepts `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Nfa) -> Nfa {
        self.alphabet
            .check_compatible(&other.alphabet)
            .expect("union over incompatible alphabets");
        let mut out = self.clone();
        let offset = out.num_states();
        for _ in 0..other.num_states() {
            out.add_state();
        }
        for (from, label, to) in other.transitions() {
            match label {
                Some(sym) => out.add_transition(from + offset, sym, to + offset),
                None => out.add_epsilon(from + offset, to + offset),
            }
        }
        for &s in &other.initial {
            out.set_initial(s + offset);
        }
        for &s in &other.finals {
            out.set_final(s + offset);
        }
        out
    }

    /// Language concatenation: accepts `L(self) · L(other)`.
    pub fn concat(&self, other: &Nfa) -> Nfa {
        self.alphabet
            .check_compatible(&other.alphabet)
            .expect("concat over incompatible alphabets");
        let mut out = Nfa::new(self.alphabet.clone());
        let left: Vec<StateId> = out.add_states(self.num_states());
        let right: Vec<StateId> = out.add_states(other.num_states());
        for (from, label, to) in self.transitions() {
            match label {
                Some(sym) => out.add_transition(left[from], sym, left[to]),
                None => out.add_epsilon(left[from], left[to]),
            }
        }
        for (from, label, to) in other.transitions() {
            match label {
                Some(sym) => out.add_transition(right[from], sym, right[to]),
                None => out.add_epsilon(right[from], right[to]),
            }
        }
        for &s in &self.initial {
            out.set_initial(left[s]);
        }
        for &f in &self.finals {
            for &i in &other.initial {
                out.add_epsilon(left[f], right[i]);
            }
        }
        for &f in &other.finals {
            out.set_final(right[f]);
        }
        out
    }

    /// Kleene star: accepts `L(self)*`.
    pub fn star(&self) -> Nfa {
        let mut out = Nfa::new(self.alphabet.clone());
        let fresh = out.add_state();
        let inner: Vec<StateId> = out.add_states(self.num_states());
        for (from, label, to) in self.transitions() {
            match label {
                Some(sym) => out.add_transition(inner[from], sym, inner[to]),
                None => out.add_epsilon(inner[from], inner[to]),
            }
        }
        out.set_initial(fresh);
        out.set_final(fresh);
        for &i in &self.initial {
            out.add_epsilon(fresh, inner[i]);
        }
        for &f in &self.finals {
            out.add_epsilon(inner[f], fresh);
        }
        out
    }

    /// Kleene plus: accepts `L(self)+ = L(self) · L(self)*`.
    pub fn plus(&self) -> Nfa {
        self.concat(&self.star())
    }

    /// Optional: accepts `L(self) ∪ {ε}`.
    pub fn optional(&self) -> Nfa {
        self.union(&Nfa::epsilon(self.alphabet.clone()))
    }

    /// Language reversal: accepts the mirror image of every word of `L(self)`.
    pub fn reverse(&self) -> Nfa {
        let mut out = Nfa::new(self.alphabet.clone());
        out.add_states(self.num_states());
        for (from, label, to) in self.transitions() {
            match label {
                Some(sym) => out.add_transition(to, sym, from),
                None => out.add_epsilon(to, from),
            }
        }
        for &s in &self.initial {
            out.set_final(s);
        }
        for &s in &self.finals {
            out.set_initial(s);
        }
        out
    }

    /// Re-labels the automaton onto a different (compatible-size or larger)
    /// alphabet via a symbol map.  Each transition labeled `sym` becomes a
    /// transition labeled `map(sym)`.
    pub fn map_symbols(&self, target: Alphabet, map: impl Fn(Symbol) -> Symbol) -> Nfa {
        let mut out = Nfa::new(target.clone());
        out.add_states(self.num_states());
        for (from, label, to) in self.transitions() {
            match label {
                Some(sym) => {
                    let m = map(sym);
                    assert!(m.index() < target.len(), "mapped symbol out of range");
                    out.add_transition(from, m, to);
                }
                None => out.add_epsilon(from, to),
            }
        }
        for &s in &self.initial {
            out.set_initial(s);
        }
        for &s in &self.finals {
            out.set_final(s);
        }
        out
    }

    /// Produces a structurally identical automaton over the (compatible,
    /// possibly larger) alphabet `target`, translating symbols by name.
    ///
    /// # Panics
    /// Panics if some symbol name of `self`'s alphabet is missing in `target`.
    pub fn with_alphabet(&self, target: Alphabet) -> Nfa {
        let src = self.alphabet.clone();
        self.map_symbols(target.clone(), move |sym| {
            target
                .symbol(src.name(sym))
                .expect("target alphabet must contain all source symbols")
        })
    }

    /// Converts a DFA into an equivalent NFA (loses nothing; useful to feed
    /// DFAs into NFA-only algorithms).
    pub fn from_dfa(dfa: &Dfa) -> Nfa {
        let mut out = Nfa::new(dfa.alphabet().clone());
        out.add_states(dfa.num_states());
        for s in 0..dfa.num_states() {
            for (sym, t) in dfa.transitions_from(s) {
                out.add_transition(s, sym, t);
            }
            if dfa.is_final(s) {
                out.set_final(s);
            }
        }
        out.set_initial(dfa.initial_state());
        out
    }

    /// Renders the automaton compactly for debugging/logging.
    pub fn describe(&self) -> String {
        format!(
            "NFA(states={}, transitions={}, initial={:?}, finals={:?})",
            self.num_states(),
            self.num_transitions(),
            self.initial,
            self.finals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::from_chars(['a', 'b']).unwrap()
    }

    fn w(alpha: &Alphabet, s: &str) -> Vec<Symbol> {
        alpha.word_from_str(s).unwrap()
    }

    #[test]
    fn empty_language_accepts_nothing() {
        let nfa = Nfa::empty(ab());
        assert!(!nfa.accepts(&[]));
        assert!(nfa.is_empty_language());
        assert_eq!(nfa.shortest_word(), None);
    }

    #[test]
    fn epsilon_accepts_only_empty_word() {
        let alpha = ab();
        let nfa = Nfa::epsilon(alpha.clone());
        assert!(nfa.accepts(&[]));
        assert!(!nfa.accepts(&w(&alpha, "a")));
        assert_eq!(nfa.shortest_word(), Some(vec![]));
    }

    #[test]
    fn symbol_automaton() {
        let alpha = ab();
        let a = alpha.symbol("a").unwrap();
        let nfa = Nfa::symbol(alpha.clone(), a);
        assert!(nfa.accepts(&w(&alpha, "a")));
        assert!(!nfa.accepts(&w(&alpha, "b")));
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&w(&alpha, "aa")));
    }

    #[test]
    fn word_automaton() {
        let alpha = ab();
        let nfa = Nfa::word(alpha.clone(), &w(&alpha, "aba"));
        assert!(nfa.accepts(&w(&alpha, "aba")));
        assert!(!nfa.accepts(&w(&alpha, "ab")));
        assert!(!nfa.accepts(&w(&alpha, "abaa")));
        assert_eq!(nfa.shortest_word(), Some(w(&alpha, "aba")));
    }

    #[test]
    fn universal_accepts_everything() {
        let alpha = ab();
        let nfa = Nfa::universal(alpha.clone());
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&w(&alpha, "abba")));
    }

    #[test]
    fn union_concat_star() {
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        let a_or_b = a.union(&b);
        assert!(a_or_b.accepts(&w(&alpha, "a")));
        assert!(a_or_b.accepts(&w(&alpha, "b")));
        assert!(!a_or_b.accepts(&w(&alpha, "ab")));

        let ab_cat = a.concat(&b);
        assert!(ab_cat.accepts(&w(&alpha, "ab")));
        assert!(!ab_cat.accepts(&w(&alpha, "a")));
        assert!(!ab_cat.accepts(&w(&alpha, "ba")));

        let a_star = a.star();
        assert!(a_star.accepts(&[]));
        assert!(a_star.accepts(&w(&alpha, "aaaa")));
        assert!(!a_star.accepts(&w(&alpha, "ab")));

        let a_plus = a.plus();
        assert!(!a_plus.accepts(&[]));
        assert!(a_plus.accepts(&w(&alpha, "aaa")));

        let a_opt = a.optional();
        assert!(a_opt.accepts(&[]));
        assert!(a_opt.accepts(&w(&alpha, "a")));
        assert!(!a_opt.accepts(&w(&alpha, "aa")));
    }

    #[test]
    fn reverse_reverses() {
        let alpha = ab();
        let nfa = Nfa::word(alpha.clone(), &w(&alpha, "ab"));
        let rev = nfa.reverse();
        assert!(rev.accepts(&w(&alpha, "ba")));
        assert!(!rev.accepts(&w(&alpha, "ab")));
    }

    #[test]
    fn trim_removes_dead_states() {
        let alpha = ab();
        let mut nfa = Nfa::new(alpha.clone());
        let s0 = nfa.add_state();
        let s1 = nfa.add_state();
        let _dead = nfa.add_state(); // unreachable
        let useless = nfa.add_state(); // reachable but not co-reachable
        nfa.set_initial(s0);
        nfa.set_final(s1);
        let a = alpha.symbol("a").unwrap();
        nfa.add_transition(s0, a, s1);
        nfa.add_transition(s0, a, useless);
        let trimmed = nfa.trim();
        assert_eq!(trimmed.num_states(), 2);
        assert!(trimmed.accepts(&w(&alpha, "a")));
        assert!(!trimmed.accepts(&w(&alpha, "aa")));
    }

    #[test]
    fn shortest_word_respects_epsilon() {
        let alpha = ab();
        let mut nfa = Nfa::new(alpha.clone());
        let s0 = nfa.add_state();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        nfa.set_initial(s0);
        nfa.set_final(s2);
        let a = alpha.symbol("a").unwrap();
        let b = alpha.symbol("b").unwrap();
        // long path: a·b ; short path: ε then b
        nfa.add_transition(s0, a, s1);
        nfa.add_transition(s1, b, s2);
        nfa.add_epsilon(s0, s1);
        assert_eq!(nfa.shortest_word(), Some(w(&alpha, "b")));
    }

    #[test]
    fn epsilon_closure_is_transitive() {
        let alpha = ab();
        let mut nfa = Nfa::new(alpha);
        let s0 = nfa.add_state();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        nfa.add_epsilon(s0, s1);
        nfa.add_epsilon(s1, s2);
        let closure = nfa.epsilon_closure(&BTreeSet::from([s0]));
        assert_eq!(closure, BTreeSet::from([s0, s1, s2]));
    }

    #[test]
    fn with_alphabet_translates_by_name() {
        let small = Alphabet::from_chars(['a']).unwrap();
        let big = Alphabet::from_chars(['x', 'a']).unwrap();
        let nfa = Nfa::symbol(small.clone(), small.symbol("a").unwrap());
        let lifted = nfa.with_alphabet(big.clone());
        assert!(lifted.accepts(&[big.symbol("a").unwrap()]));
        assert!(!lifted.accepts(&[big.symbol("x").unwrap()]));
    }

    #[test]
    fn accepts_names_ignores_unknown() {
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        assert!(a.accepts_names(&["a"]));
        assert!(!a.accepts_names(&["z"]));
    }

    #[test]
    fn describe_mentions_counts() {
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let d = a.describe();
        assert!(d.contains("states=2"));
        assert!(d.contains("transitions=1"));
    }
}
