//! Subset construction: NFA → DFA.
//!
//! Determinization is the first (and exponential) step of the rewriting
//! algorithm of the paper (Section 2, step 1): the query expression `E0` is
//! translated to an NFA and then determinized into `A_d`.  Theorem 3.1's
//! 2EXPTIME upper bound and the blow-up measured in experiment E6 both hinge
//! on this construction, so we expose the mapping from DFA states back to NFA
//! state sets for inspection by benchmarks and tests.

use std::collections::{BTreeSet, HashMap, VecDeque};

use crate::dfa::Dfa;
use crate::nfa::{Nfa, StateId};

/// Result of determinization: the DFA plus the subset of NFA states that each
/// DFA state represents.
#[derive(Debug, Clone)]
pub struct Determinized {
    /// The deterministic automaton.
    pub dfa: Dfa,
    /// `subsets[s]` is the set of NFA states that DFA state `s` stands for.
    pub subsets: Vec<BTreeSet<StateId>>,
}

/// Determinizes `nfa` by the subset construction, producing a **complete**
/// DFA (the empty subset acts as the sink when reachable).
///
/// The result accepts exactly the same language.  Only subsets reachable from
/// the closed initial configuration are materialized, so the output has at
/// most `2^n` states but usually far fewer.
pub fn determinize(nfa: &Nfa) -> Dfa {
    determinize_with_subsets(nfa).dfa
}

/// Like [`determinize`] but also returns the subset each DFA state represents.
pub fn determinize_with_subsets(nfa: &Nfa) -> Determinized {
    let alphabet = nfa.alphabet().clone();
    let start = nfa.start_configuration();

    let mut subsets: Vec<BTreeSet<StateId>> = Vec::new();
    let mut index: HashMap<BTreeSet<StateId>, usize> = HashMap::new();
    let mut transitions: Vec<Vec<(crate::alphabet::Symbol, usize)>> = Vec::new();

    let intern = |set: BTreeSet<StateId>,
                      subsets: &mut Vec<BTreeSet<StateId>>,
                      index: &mut HashMap<BTreeSet<StateId>, usize>,
                      transitions: &mut Vec<Vec<(crate::alphabet::Symbol, usize)>>|
     -> (usize, bool) {
        if let Some(&i) = index.get(&set) {
            (i, false)
        } else {
            let i = subsets.len();
            index.insert(set.clone(), i);
            subsets.push(set);
            transitions.push(Vec::new());
            (i, true)
        }
    };

    let (start_id, _) = intern(start, &mut subsets, &mut index, &mut transitions);
    let mut queue = VecDeque::from([start_id]);

    while let Some(cur) = queue.pop_front() {
        let cur_set = subsets[cur].clone();
        for sym in alphabet.symbols() {
            let next = nfa.epsilon_closure(&nfa.step(&cur_set, sym));
            let (next_id, fresh) = intern(next, &mut subsets, &mut index, &mut transitions);
            transitions[cur].push((sym, next_id));
            if fresh {
                queue.push_back(next_id);
            }
        }
    }

    let finals: Vec<usize> = subsets
        .iter()
        .enumerate()
        .filter(|(_, set)| set.iter().any(|s| nfa.is_final(*s)))
        .map(|(i, _)| i)
        .collect();

    let dfa = Dfa::from_parts(
        alphabet,
        subsets.len(),
        start_id,
        finals,
        transitions
            .iter()
            .enumerate()
            .flat_map(|(from, ts)| ts.iter().map(move |&(sym, to)| (from, sym, to))),
    );

    Determinized { dfa, subsets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{Alphabet, Symbol};

    fn ab() -> Alphabet {
        Alphabet::from_chars(['a', 'b']).unwrap()
    }

    fn w(alpha: &Alphabet, s: &str) -> Vec<Symbol> {
        alpha.word_from_str(s).unwrap()
    }

    #[test]
    fn determinize_preserves_language() {
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        // (a+b)*·a·b
        let nfa = Nfa::universal(alpha.clone()).concat(&a).concat(&b);
        let dfa = determinize(&nfa);
        assert!(dfa.is_complete());
        for word in ["ab", "aab", "bab", "abab"] {
            assert!(dfa.accepts(&w(&alpha, word)), "should accept {word}");
            assert!(nfa.accepts(&w(&alpha, word)));
        }
        for word in ["", "a", "b", "ba", "abba"] {
            assert!(!dfa.accepts(&w(&alpha, word)), "should reject {word}");
        }
    }

    #[test]
    fn determinize_empty_language() {
        let dfa = determinize(&Nfa::empty(ab()));
        assert!(dfa.is_empty_language());
        assert!(dfa.is_complete());
    }

    #[test]
    fn determinize_epsilon_language() {
        let alpha = ab();
        let dfa = determinize(&Nfa::epsilon(alpha.clone()));
        assert!(dfa.accepts(&[]));
        assert!(!dfa.accepts(&w(&alpha, "a")));
    }

    #[test]
    fn subsets_reflect_nfa_states() {
        let alpha = ab();
        let a = alpha.symbol("a").unwrap();
        let nfa = Nfa::symbol(alpha.clone(), a);
        let det = determinize_with_subsets(&nfa);
        assert_eq!(det.subsets.len(), det.dfa.num_states());
        // The start subset is the epsilon closure of the NFA initial states.
        assert_eq!(
            det.subsets[det.dfa.initial_state()],
            nfa.start_configuration()
        );
    }

    #[test]
    fn worst_case_family_blows_up() {
        // (a+b)*·a·(a+b)^n requires ~2^(n+1) DFA states.
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let n = 5;
        let mut nfa = Nfa::universal(alpha.clone()).concat(&a);
        for _ in 0..n {
            nfa = nfa.concat(&Nfa::any_symbol(alpha.clone()));
        }
        let dfa = determinize(&nfa);
        assert!(
            dfa.num_states() >= 1 << (n + 1),
            "expected >= {} states, got {}",
            1 << (n + 1),
            dfa.num_states()
        );
    }
}
