//! Subset construction: NFA → DFA.
//!
//! Determinization is the first (and exponential) step of the rewriting
//! algorithm of the paper (Section 2, step 1): the query expression `E0` is
//! translated to an NFA and then determinized into `A_d`.  Theorem 3.1's
//! 2EXPTIME upper bound and the blow-up measured in experiment E6 both hinge
//! on this construction, so we expose the mapping from DFA states back to NFA
//! state sets for inspection by benchmarks and tests.
//!
//! The construction runs on the dense core ([`crate::dense::DenseNfa`]):
//! ε-closures are precomputed once per NFA state and folded into CSR
//! successor lists, subsets are interned as sorted `Vec<u32>` keys in a
//! `HashMap` (no per-iteration set cloning — scratch buffers are reused
//! across states and symbols), and membership during subset union is tracked
//! by a bitset.  The original tree-based construction is retained as
//! [`determinize_with_subsets_baseline`] for the differential property tests
//! and the `determinization` Criterion benchmark.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

use crate::alphabet::Symbol;
use crate::dense::{BitSet, DenseDfa, DenseNfa, FxHashMap};
use crate::dfa::Dfa;
use crate::nfa::{Nfa, StateId};

/// Result of determinization: the DFA plus the subset of NFA states that each
/// DFA state represents.
#[derive(Debug, Clone)]
pub struct Determinized {
    /// The deterministic automaton.
    pub dfa: Dfa,
    /// `subsets[s]` is the set of NFA states that DFA state `s` stands for.
    pub subsets: Vec<BTreeSet<StateId>>,
}

/// Result of [`determinize_to_dense`]: the flat-table DFA plus the interned
/// subset each state represents (sorted member lists, shared with the
/// construction's interning map).
#[derive(Debug, Clone)]
pub struct DeterminizedDense {
    /// The deterministic automaton as a flat next-state table (complete by
    /// construction: the empty subset is an ordinary sink state).
    pub dfa: DenseDfa,
    /// `subsets[s]` is the sorted list of NFA states that state `s` stands
    /// for.
    pub subsets: Vec<Rc<[u32]>>,
}

/// Determinizes `nfa` by the subset construction, producing a **complete**
/// DFA (the empty subset acts as the sink when reachable).
///
/// The result accepts exactly the same language.  Only subsets reachable from
/// the closed initial configuration are materialized, so the output has at
/// most `2^n` states but usually far fewer.
pub fn determinize(nfa: &Nfa) -> Dfa {
    determinize_with_subsets(nfa).dfa
}

/// Like [`determinize`] but also returns the subset each DFA state represents.
pub fn determinize_with_subsets(nfa: &Nfa) -> Determinized {
    let dense = DenseNfa::from_nfa(nfa);
    determinize_dense(&dense)
}

/// Subset construction over an already-frozen [`DenseNfa`], thawing the
/// result into a tree [`Dfa`] for the tree-typed public API.
///
/// Exposed so pipelines that already hold a dense automaton (e.g. repeated
/// determinizations in benchmarks) can skip the freezing step.
pub fn determinize_dense(dense: &DenseNfa) -> Determinized {
    let DeterminizedDense { dfa, subsets } = determinize_to_dense(dense);
    Determinized {
        dfa: dfa.to_dfa(),
        subsets: subsets
            .into_iter()
            .map(|set| set.iter().map(|&s| s as StateId).collect())
            .collect(),
    }
}

/// Subset construction producing a [`DenseDfa`] natively — no tree `Dfa` is
/// materialized at any point.  This is the determinization the rewriting
/// pipeline runs on (steps 1 and 3 of the Theorem 2.2 construction).
pub fn determinize_to_dense(dense: &DenseNfa) -> DeterminizedDense {
    let k = dense.num_symbols();

    // Interned subsets: sorted state lists, looked up by slice (no cloning on
    // the hit path — `Rc<[u32]>` borrows as `[u32]`), with each subset's
    // member list allocated once and shared between the map and the vector.
    let mut subsets: Vec<Rc<[u32]>> = Vec::new();
    let mut accepting: Vec<bool> = Vec::new();
    let mut index: FxHashMap<Rc<[u32]>, u32> = FxHashMap::default();
    // Flat transition table: `transitions[s * k + a]` = successor id.  The
    // construction is complete by design (the empty subset is interned as an
    // ordinary sink state when reached).
    let mut transitions: Vec<u32> = Vec::new();

    let start: Rc<[u32]> = dense.start().into();
    index.insert(start.clone(), 0);
    accepting.push(dense.any_final(&start));
    subsets.push(start);

    // Scratch buffers reused across every state and symbol.
    let mut scratch = BitSet::new(dense.num_states());
    let mut cur_members: Vec<u32> = Vec::new();
    let mut next_members: Vec<u32> = Vec::new();

    let mut queue: VecDeque<u32> = VecDeque::from([0]);
    while let Some(cur) = queue.pop_front() {
        // One copy of the current subset per state (the subsets vector may
        // reallocate while we intern successors), reused for all symbols.
        cur_members.clear();
        cur_members.extend_from_slice(&subsets[cur as usize]);
        debug_assert_eq!(transitions.len(), cur as usize * k);
        for a in 0..k {
            dense.step_closed(&cur_members, a, &mut scratch, &mut next_members);
            let next_id = match index.get(next_members.as_slice()) {
                Some(&id) => id,
                None => {
                    let id = subsets.len() as u32;
                    let key: Rc<[u32]> = next_members.as_slice().into();
                    index.insert(key.clone(), id);
                    accepting.push(dense.any_final(&key));
                    subsets.push(key);
                    queue.push_back(id);
                    id
                }
            };
            transitions.push(next_id);
        }
    }

    let dfa = DenseDfa::from_parts(
        dense.alphabet().clone(),
        subsets.len(),
        0,
        accepting
            .iter()
            .enumerate()
            .filter_map(|(s, &acc)| acc.then_some(s as u32)),
        transitions,
    );
    DeterminizedDense { dfa, subsets }
}

/// The seed's tree-based subset construction (`BTreeSet` configurations with
/// per-step ε-closure recomputation).  Retained verbatim as the differential
/// baseline: the dense path must produce a structurally identical automaton,
/// and the `determinization` benchmark quantifies the speedup.
pub fn determinize_with_subsets_baseline(nfa: &Nfa) -> Determinized {
    let alphabet = nfa.alphabet().clone();
    let start = nfa.start_configuration();

    let mut subsets: Vec<BTreeSet<StateId>> = Vec::new();
    let mut index: HashMap<BTreeSet<StateId>, usize> = HashMap::new();
    let mut transitions: Vec<Vec<(Symbol, usize)>> = Vec::new();

    let intern = |set: BTreeSet<StateId>,
                      subsets: &mut Vec<BTreeSet<StateId>>,
                      index: &mut HashMap<BTreeSet<StateId>, usize>,
                      transitions: &mut Vec<Vec<(Symbol, usize)>>|
     -> (usize, bool) {
        if let Some(&i) = index.get(&set) {
            (i, false)
        } else {
            let i = subsets.len();
            index.insert(set.clone(), i);
            subsets.push(set);
            transitions.push(Vec::new());
            (i, true)
        }
    };

    let (start_id, _) = intern(start, &mut subsets, &mut index, &mut transitions);
    let mut queue = VecDeque::from([start_id]);

    while let Some(cur) = queue.pop_front() {
        let cur_set = subsets[cur].clone();
        for sym in alphabet.symbols() {
            let next = nfa.epsilon_closure(&nfa.step(&cur_set, sym));
            let (next_id, fresh) = intern(next, &mut subsets, &mut index, &mut transitions);
            transitions[cur].push((sym, next_id));
            if fresh {
                queue.push_back(next_id);
            }
        }
    }

    let finals: Vec<usize> = subsets
        .iter()
        .enumerate()
        .filter(|(_, set)| set.iter().any(|s| nfa.is_final(*s)))
        .map(|(i, _)| i)
        .collect();

    let dfa = Dfa::from_parts(
        alphabet,
        subsets.len(),
        start_id,
        finals,
        transitions
            .iter()
            .enumerate()
            .flat_map(|(from, ts)| ts.iter().map(move |&(sym, to)| (from, sym, to))),
    );

    Determinized { dfa, subsets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{Alphabet, Symbol};

    fn ab() -> Alphabet {
        Alphabet::from_chars(['a', 'b']).unwrap()
    }

    fn w(alpha: &Alphabet, s: &str) -> Vec<Symbol> {
        alpha.word_from_str(s).unwrap()
    }

    #[test]
    fn determinize_preserves_language() {
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        // (a+b)*·a·b
        let nfa = Nfa::universal(alpha.clone()).concat(&a).concat(&b);
        let dfa = determinize(&nfa);
        assert!(dfa.is_complete());
        for word in ["ab", "aab", "bab", "abab"] {
            assert!(dfa.accepts(&w(&alpha, word)), "should accept {word}");
            assert!(nfa.accepts(&w(&alpha, word)));
        }
        for word in ["", "a", "b", "ba", "abba"] {
            assert!(!dfa.accepts(&w(&alpha, word)), "should reject {word}");
        }
    }

    #[test]
    fn determinize_empty_language() {
        let dfa = determinize(&Nfa::empty(ab()));
        assert!(dfa.is_empty_language());
        assert!(dfa.is_complete());
    }

    #[test]
    fn determinize_epsilon_language() {
        let alpha = ab();
        let dfa = determinize(&Nfa::epsilon(alpha.clone()));
        assert!(dfa.accepts(&[]));
        assert!(!dfa.accepts(&w(&alpha, "a")));
    }

    #[test]
    fn subsets_reflect_nfa_states() {
        let alpha = ab();
        let a = alpha.symbol("a").unwrap();
        let nfa = Nfa::symbol(alpha.clone(), a);
        let det = determinize_with_subsets(&nfa);
        assert_eq!(det.subsets.len(), det.dfa.num_states());
        // The start subset is the epsilon closure of the NFA initial states.
        assert_eq!(
            det.subsets[det.dfa.initial_state()],
            nfa.start_configuration()
        );
    }

    #[test]
    fn worst_case_family_blows_up() {
        // (a+b)*·a·(a+b)^n requires ~2^(n+1) DFA states.
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let n = 5;
        let mut nfa = Nfa::universal(alpha.clone()).concat(&a);
        for _ in 0..n {
            nfa = nfa.concat(&Nfa::any_symbol(alpha.clone()));
        }
        let dfa = determinize(&nfa);
        assert!(
            dfa.num_states() >= 1 << (n + 1),
            "expected >= {} states, got {}",
            1 << (n + 1),
            dfa.num_states()
        );
    }

    #[test]
    fn dense_construction_is_structurally_identical_to_baseline() {
        // Both constructions explore subsets breadth-first in symbol order,
        // so state numbering, transitions, finals and subsets must coincide
        // exactly — not just up to language equivalence.
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        let cases = [
            Nfa::universal(alpha.clone()).concat(&a).concat(&b),
            a.union(&b).star().concat(&a.concat(&b).optional()),
            a.star().concat(&b.star()).star(),
            Nfa::empty(alpha.clone()),
            Nfa::epsilon(alpha.clone()),
        ];
        for nfa in cases {
            let dense = determinize_with_subsets(&nfa);
            let baseline = determinize_with_subsets_baseline(&nfa);
            assert_eq!(dense.subsets, baseline.subsets);
            assert_eq!(dense.dfa.num_states(), baseline.dfa.num_states());
            assert_eq!(dense.dfa.initial_state(), baseline.dfa.initial_state());
            assert_eq!(
                dense.dfa.final_states(),
                baseline.dfa.final_states()
            );
            assert_eq!(
                dense.dfa.transitions().collect::<Vec<_>>(),
                baseline.dfa.transitions().collect::<Vec<_>>()
            );
        }
    }
}
