//! Dense, cache-friendly automaton representations.
//!
//! The tree-based [`Nfa`]/[`Dfa`] types are convenient to *build* — rational
//! operations, view expansions and DOT export all mutate per-state
//! `BTreeMap`s — but every hot loop of the rewriting pipeline (subset
//! construction, word-reachability sweeps, product containment, RPQ
//! evaluation) only ever *reads* a frozen automaton.  This module provides
//! frozen, flat read-side representations:
//!
//! * [`DenseNfa`] — CSR-style transition tables (`Vec<u32>` successor arrays
//!   with a per-`(state, symbol)` offset index) in which every successor list
//!   is already **ε-closed**: the closure of each state is computed once at
//!   construction time and folded into the lists, so traversals never touch
//!   ε-edges again.  Per-state ε-closures remain available via
//!   [`DenseNfa::closure`].
//! * [`DenseDfa`] — a flat `state × symbol` next-state table with a sentinel
//!   for missing transitions.
//! * [`BitSet`] — `u64`-word bitsets used for state sets, frontiers, and
//!   visited maps throughout the dense algorithms.
//!
//! Conversion is one-way and cheap (`DenseNfa::from_nfa`,
//! `DenseDfa::from_dfa`, also exposed as `From` impls); the tree types stay
//! the public construction API, and [`fn@crate::determinize`],
//! [`crate::product::word_reachability_relation`],
//! [`crate::equivalence::dfa_subset_of_nfa`] and `graphdb`'s RPQ evaluator
//! all run on the dense core internally.

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use crate::alphabet::{Alphabet, Symbol};
use crate::dfa::Dfa;
use crate::nfa::Nfa;

/// A fast, non-cryptographic hasher (the rustc/FxHash multiply-xor scheme).
///
/// The subset-interning maps of the dense algorithms hash millions of short
/// `u32` slices; SipHash's per-write overhead dominates there, while Fx
/// hashing is a rotate-xor-multiply per word.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // The hot keys are `[u32]` slices, which std's `hash_slice`
        // specialization delivers here as one contiguous byte slice — chunk
        // it into u64 words so hashing really is per-word, not per-byte.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// A `HashMap` using [`FxHasher`], for the hot interning maps.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// The visited map of a product sweep: each distinct ε-closed configuration
/// (sorted member list, allocated once and shared via `Rc`) maps to its own
/// canonical `Rc` plus the bitset of automaton states it has been visited
/// with.  The value-side `Rc` lets [`intern_visit`] hand the canonical key
/// back from a single hash lookup.
pub type ConfigVisitMap = FxHashMap<std::rc::Rc<[u32]>, (std::rc::Rc<[u32]>, BitSet)>;

/// Marks `(state, config)` as visited, returning the canonical shared
/// configuration when the pair is new (`None` when it was already visited).
///
/// `num_states` sizes the bitset for fresh configurations.  This is the
/// common inner step of the product sweeps in
/// [`crate::product::word_reachability_relation`] and
/// [`crate::equivalence::dfa_subset_of_nfa`].
pub fn intern_visit(
    seen: &mut ConfigVisitMap,
    config: &[u32],
    state: u32,
    num_states: usize,
) -> Option<std::rc::Rc<[u32]>> {
    match seen.get_mut(config) {
        Some((canonical, visited)) => visited.insert(state).then(|| canonical.clone()),
        None => {
            let canonical: std::rc::Rc<[u32]> = config.into();
            let mut visited = BitSet::new(num_states);
            visited.insert(state);
            seen.insert(canonical.clone(), (canonical.clone(), visited));
            Some(canonical)
        }
    }
}

/// Seeds a [`ConfigVisitMap`] with a start pair (used once per sweep).
pub fn intern_visit_start(
    seen: &mut ConfigVisitMap,
    config: &std::rc::Rc<[u32]>,
    state: u32,
    num_states: usize,
) {
    let mut visited = BitSet::new(num_states);
    visited.insert(state);
    seen.insert(config.clone(), (config.clone(), visited));
}

/// Sentinel for "no transition" in [`DenseDfa`] tables.
pub const DEAD: u32 = u32::MAX;

/// A fixed-capacity set of small integers backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set with capacity for values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Number of `u64` words backing the set.
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Inserts `value`, returning `true` if it was absent.
    #[inline]
    pub fn insert(&mut self, value: u32) -> bool {
        let (word, bit) = (value as usize / 64, value as usize % 64);
        let mask = 1u64 << bit;
        let was_absent = self.words[word] & mask == 0;
        self.words[word] |= mask;
        was_absent
    }

    /// Removes `value`.
    #[inline]
    pub fn remove(&mut self, value: u32) {
        let (word, bit) = (value as usize / 64, value as usize % 64);
        self.words[word] &= !(1u64 << bit);
    }

    /// Whether `value` is present.
    #[inline]
    pub fn contains(&self, value: u32) -> bool {
        let (word, bit) = (value as usize / 64, value as usize % 64);
        self.words[word] & (1u64 << bit) != 0
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Whether no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the intersection with `other` is nonempty.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(&a, &b)| a & b != 0)
    }

    /// Moves the elements into `out` in ascending order, leaving the set
    /// empty.  One pass over the backing words — no sorting, no per-element
    /// removal — which is what makes bitset-accumulated configurations cheap
    /// to extract in the subset-construction inner loop.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<u32>) {
        for (i, word) in self.words.iter_mut().enumerate() {
            let mut w = *word;
            while w != 0 {
                let bit = w.trailing_zeros();
                out.push(i as u32 * 64 + bit);
                w &= w - 1;
            }
            *word = 0;
        }
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(i as u32 * 64 + bit)
            })
        })
    }
}

/// A frozen NFA with CSR transition tables and precomputed ε-closures.
///
/// Successor lists are ε-closed and sorted, so a single lookup per
/// `(state, symbol)` pair replaces the step-then-closure dance of the tree
/// representation.  ε-transitions are gone after construction.
#[derive(Debug, Clone)]
pub struct DenseNfa {
    alphabet: Alphabet,
    num_states: usize,
    num_symbols: usize,
    /// `closed_offsets[s * num_symbols + a] .. [s * num_symbols + a + 1]`
    /// bounds the slice of `closed_targets` holding the sorted ε-closed
    /// successors of `s` under symbol `a`.
    closed_offsets: Vec<u32>,
    closed_targets: Vec<u32>,
    /// `closure_offsets[s] .. [s + 1]` bounds the slice of `closure_targets`
    /// holding the sorted ε-closure of `{s}` (always contains `s`).
    closure_offsets: Vec<u32>,
    closure_targets: Vec<u32>,
    /// Sorted ε-closure of the initial states.
    start: Vec<u32>,
    finals: BitSet,
}

impl DenseNfa {
    /// Builds an **ε-free** dense NFA directly from parts: every state's
    /// closure is the singleton `{s}` and the successor lists are exactly the
    /// given transitions (deduplicated and sorted per `(state, symbol)`).
    ///
    /// This is the construction entry point for dense algorithms that
    /// produce NFAs natively — the product [`crate::product::intersect_dfa_nfa`]
    /// and the rewriting automaton `A'` of `rewriter` — without routing
    /// through a mutable tree [`Nfa`].
    ///
    /// # Panics
    /// Panics if a state or symbol index is out of range.
    pub fn from_parts(
        alphabet: Alphabet,
        num_states: usize,
        initials: impl IntoIterator<Item = u32>,
        finals: impl IntoIterator<Item = u32>,
        transitions: impl IntoIterator<Item = (u32, u32, u32)>,
    ) -> Self {
        let n = num_states;
        let k = alphabet.len();
        // Bucket transitions by (state, symbol) via counting sort into CSR.
        let mut bucketed: Vec<Vec<u32>> = vec![Vec::new(); n * k];
        for (from, sym, to) in transitions {
            assert!((from as usize) < n && (to as usize) < n, "state out of range");
            assert!((sym as usize) < k, "symbol index {sym} out of range");
            bucketed[from as usize * k + sym as usize].push(to);
        }
        let mut closed_offsets = Vec::with_capacity(n * k + 1);
        let mut closed_targets = Vec::new();
        closed_offsets.push(0u32);
        for bucket in &mut bucketed {
            bucket.sort_unstable();
            bucket.dedup();
            closed_targets.extend_from_slice(bucket);
            closed_offsets.push(closed_targets.len() as u32);
        }
        // Singleton closures: closure(s) = {s}.
        let closure_offsets: Vec<u32> = (0..=n as u32).collect();
        let closure_targets: Vec<u32> = (0..n as u32).collect();
        let mut start: Vec<u32> = initials
            .into_iter()
            .inspect(|&s| assert!((s as usize) < n, "initial state out of range"))
            .collect();
        start.sort_unstable();
        start.dedup();
        let mut final_set = BitSet::new(n);
        for f in finals {
            assert!((f as usize) < n, "final state out of range");
            final_set.insert(f);
        }
        DenseNfa {
            alphabet,
            num_states: n,
            num_symbols: k,
            closed_offsets,
            closed_targets,
            closure_offsets,
            closure_targets,
            start,
            finals: final_set,
        }
    }

    /// Views a frozen DFA as an ε-free dense NFA (singleton successor lists).
    ///
    /// Used where a deterministic automaton — e.g. a rewriting automaton —
    /// flows into an NFA-consuming evaluator without a tree round trip.
    pub fn from_dense_dfa(dfa: &DenseDfa) -> Self {
        let n = dfa.num_states();
        let k = dfa.num_symbols();
        Self::from_parts(
            dfa.alphabet().clone(),
            n,
            [dfa.initial()],
            dfa.finals().iter(),
            (0..n as u32).flat_map(move |s| {
                (0..k as u32).filter_map(move |a| {
                    dfa.next(s, a as usize).map(|t| (s, a, t))
                })
            }),
        )
    }

    /// Re-labels the automaton over a compatible alphabet (same symbol
    /// indices, possibly a different interned instance).
    ///
    /// # Panics
    /// Panics when the alphabets are incompatible.
    pub fn with_alphabet(mut self, target: Alphabet) -> Self {
        self.alphabet
            .check_compatible(&target)
            .expect("re-labeling over an incompatible alphabet");
        self.alphabet = target;
        self
    }

    /// Thaws the dense automaton back into a tree [`Nfa`] (ε-free: the
    /// folded closures become plain transitions).  Accepts the same
    /// language; used to expose dense-built automata through tree-typed
    /// public fields.
    pub fn to_nfa(&self) -> Nfa {
        let mut out = Nfa::new(self.alphabet.clone());
        out.add_states(self.num_states);
        for &s in &self.start {
            out.set_initial(s as usize);
        }
        for f in self.finals.iter() {
            out.set_final(f as usize);
        }
        for s in 0..self.num_states as u32 {
            for a in 0..self.num_symbols {
                for &t in self.closed_successors(s, a) {
                    out.add_transition(s as usize, Symbol(a as u32), t as usize);
                }
            }
        }
        out
    }

    /// Freezes a tree NFA into the dense representation.
    pub fn from_nfa(nfa: &Nfa) -> Self {
        let n = nfa.num_states();
        let k = nfa.alphabet().len();

        // 1. ε-closure of each singleton, by BFS over ε-edges; the visited
        // bitset drains directly into the CSR array in sorted order.
        let mut closure_offsets = Vec::with_capacity(n + 1);
        let mut closure_targets = Vec::new();
        let mut seen = BitSet::new(n);
        let mut queue = VecDeque::new();
        closure_offsets.push(0u32);
        for s in 0..n {
            queue.clear();
            seen.insert(s as u32);
            queue.push_back(s);
            while let Some(cur) = queue.pop_front() {
                for t in nfa.epsilon_successors(cur) {
                    if seen.insert(t as u32) {
                        queue.push_back(t);
                    }
                }
            }
            seen.drain_sorted_into(&mut closure_targets);
            closure_offsets.push(closure_targets.len() as u32);
        }
        let closure_of = |s: u32| {
            let lo = closure_offsets[s as usize] as usize;
            let hi = closure_offsets[s as usize + 1] as usize;
            &closure_targets[lo..hi]
        };

        // 2. ε-closed successor lists per (state, symbol), in CSR layout.
        let mut closed_offsets = Vec::with_capacity(n * k + 1);
        let mut closed_targets = Vec::new();
        closed_offsets.push(0u32);
        for s in 0..n {
            for a in 0..k {
                for t in nfa.successors(s, Symbol(a as u32)) {
                    for &c in closure_of(t as u32) {
                        seen.insert(c);
                    }
                }
                seen.drain_sorted_into(&mut closed_targets);
                closed_offsets.push(closed_targets.len() as u32);
            }
        }

        // 3. Closed start configuration and finals.
        let mut start = Vec::new();
        for &s in nfa.initial_states() {
            for &c in closure_of(s as u32) {
                seen.insert(c);
            }
        }
        seen.drain_sorted_into(&mut start);

        let mut finals = BitSet::new(n);
        for &f in nfa.final_states() {
            finals.insert(f as u32);
        }

        DenseNfa {
            alphabet: nfa.alphabet().clone(),
            num_states: n,
            num_symbols: k,
            closed_offsets,
            closed_targets,
            closure_offsets,
            closure_targets,
            start,
            finals,
        }
    }

    /// The alphabet of the automaton.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of symbols of the alphabet.
    pub fn num_symbols(&self) -> usize {
        self.num_symbols
    }

    /// The ε-closed initial configuration, sorted.
    pub fn start(&self) -> &[u32] {
        &self.start
    }

    /// The final-state bitset.
    pub fn finals(&self) -> &BitSet {
        &self.finals
    }

    /// Whether `state` is final.
    #[inline]
    pub fn is_final(&self, state: u32) -> bool {
        self.finals.contains(state)
    }

    /// The sorted ε-closed successors of `state` under symbol index `sym`.
    #[inline]
    pub fn closed_successors(&self, state: u32, sym: usize) -> &[u32] {
        debug_assert!(
            sym < self.num_symbols,
            "symbol index {sym} out of range for alphabet of {} symbols",
            self.num_symbols
        );
        let idx = state as usize * self.num_symbols + sym;
        let lo = self.closed_offsets[idx] as usize;
        let hi = self.closed_offsets[idx + 1] as usize;
        &self.closed_targets[lo..hi]
    }

    /// The sorted ε-closure of `{state}` (always contains `state`).
    #[inline]
    pub fn closure(&self, state: u32) -> &[u32] {
        let lo = self.closure_offsets[state as usize] as usize;
        let hi = self.closure_offsets[state as usize + 1] as usize;
        &self.closure_targets[lo..hi]
    }

    /// Steps an ε-closed configuration by one symbol, producing the sorted
    /// ε-closed successor configuration in `out`.  `scratch` must have
    /// capacity for this automaton's states and be empty; it is left empty.
    pub fn step_closed(&self, config: &[u32], sym: usize, scratch: &mut BitSet, out: &mut Vec<u32>) {
        out.clear();
        for &s in config {
            for &t in self.closed_successors(s, sym) {
                scratch.insert(t);
            }
        }
        scratch.drain_sorted_into(out);
    }

    /// Whether any state of `config` is final.
    pub fn any_final(&self, config: &[u32]) -> bool {
        config.iter().any(|&s| self.finals.contains(s))
    }

    /// Freezes the reverse of the ε-closed transition relation into a CSR
    /// table: `t ∈ closed_successors(s, a)` ⟺ `s ∈ closed_predecessors(t, a)`.
    ///
    /// Backward product sweeps (e.g. the delta maintenance of `engine`, which
    /// asks "from which `(source, state)` pairs can a run reach the endpoint
    /// of a freshly inserted edge?") need exactly this relation; building it
    /// once per frozen automaton keeps the sweep itself allocation-free.
    pub fn reverse_closed(&self) -> DenseReverse {
        let n = self.num_states;
        let k = self.num_symbols;
        // Counting sort into CSR: one pass to size each (target, symbol)
        // bucket, one pass to fill it.
        let mut offsets = vec![0u32; n * k + 1];
        for s in 0..n as u32 {
            for a in 0..k {
                for &t in self.closed_successors(s, a) {
                    offsets[t as usize * k + a + 1] += 1;
                }
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut sources = vec![0u32; self.closed_targets.len()];
        for s in 0..n as u32 {
            for a in 0..k {
                for &t in self.closed_successors(s, a) {
                    let slot = &mut cursor[t as usize * k + a];
                    sources[*slot as usize] = s;
                    *slot += 1;
                }
            }
        }
        DenseReverse {
            num_states: n,
            num_symbols: k,
            offsets,
            sources,
        }
    }

    /// Whether the automaton accepts `word` (bitset-frontier evaluation).
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut scratch = BitSet::new(self.num_states);
        let mut current = self.start.to_vec();
        let mut next = Vec::new();
        for &sym in word {
            if current.is_empty() {
                return false;
            }
            self.step_closed(&current, sym.index(), &mut scratch, &mut next);
            std::mem::swap(&mut current, &mut next);
        }
        self.any_final(&current)
    }
}

impl From<&Nfa> for DenseNfa {
    fn from(nfa: &Nfa) -> Self {
        DenseNfa::from_nfa(nfa)
    }
}

/// The reverse of a [`DenseNfa`]'s ε-closed transition relation, frozen into
/// a CSR table by [`DenseNfa::reverse_closed`].
///
/// `closed_predecessors(t, a)` lists every state `s` with
/// `t ∈ closed_successors(s, a)` — i.e. the states from which one `a`-step
/// (with ε-closure folded in) can land in `t`.  Sources within a bucket
/// appear in ascending order, mirroring the forward table.
#[derive(Debug, Clone)]
pub struct DenseReverse {
    num_states: usize,
    num_symbols: usize,
    /// `offsets[t * num_symbols + a] .. [t * num_symbols + a + 1]` bounds the
    /// slice of `sources` holding the predecessors of `t` under symbol `a`.
    offsets: Vec<u32>,
    sources: Vec<u32>,
}

impl DenseReverse {
    /// Number of states of the underlying automaton.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of symbols of the underlying alphabet.
    pub fn num_symbols(&self) -> usize {
        self.num_symbols
    }

    /// The sorted states `s` with `state ∈ closed_successors(s, sym)`.
    #[inline]
    pub fn closed_predecessors(&self, state: u32, sym: usize) -> &[u32] {
        debug_assert!(
            sym < self.num_symbols,
            "symbol index {sym} out of range for alphabet of {} symbols",
            self.num_symbols
        );
        let idx = state as usize * self.num_symbols + sym;
        let lo = self.offsets[idx] as usize;
        let hi = self.offsets[idx + 1] as usize;
        &self.sources[lo..hi]
    }
}

/// A frozen DFA as a flat `state × symbol` next-state table.
#[derive(Debug, Clone)]
pub struct DenseDfa {
    alphabet: Alphabet,
    num_states: usize,
    num_symbols: usize,
    /// `table[s * num_symbols + a]` is the successor, or [`DEAD`].
    table: Vec<u32>,
    initial: u32,
    finals: BitSet,
}

impl DenseDfa {
    /// Builds a dense DFA directly from a flat next-state table
    /// (`table[s * alphabet.len() + a]`, [`DEAD`] for missing transitions).
    ///
    /// This is the construction entry point for the dense algorithms
    /// ([`crate::determinize::determinize_to_dense`],
    /// [`crate::dense_ops`]) — results are laid out flat from the start
    /// instead of round-tripping through the tree [`Dfa`].
    ///
    /// # Panics
    /// Panics if the table size disagrees with `num_states` or if `initial`
    /// or any live table entry is out of range.
    pub fn from_parts(
        alphabet: Alphabet,
        num_states: usize,
        initial: u32,
        finals: impl IntoIterator<Item = u32>,
        table: Vec<u32>,
    ) -> Self {
        let k = alphabet.len();
        assert_eq!(table.len(), num_states * k, "table size mismatch");
        assert!((initial as usize) < num_states, "initial state out of range");
        assert!(
            table.iter().all(|&t| t == DEAD || (t as usize) < num_states),
            "transition target out of range"
        );
        let mut final_set = BitSet::new(num_states);
        for f in finals {
            assert!((f as usize) < num_states, "final state out of range");
            final_set.insert(f);
        }
        DenseDfa {
            alphabet,
            num_states,
            num_symbols: k,
            table,
            initial,
            finals: final_set,
        }
    }

    /// Thaws the dense automaton back into a tree [`Dfa`] with identical
    /// states, transitions, initial and final states.  Pure representation
    /// change; used to expose dense-computed results through tree-typed
    /// public APIs.
    pub fn to_dfa(&self) -> Dfa {
        Dfa::from_parts(
            self.alphabet.clone(),
            self.num_states,
            self.initial as usize,
            self.finals.iter().map(|f| f as usize),
            (0..self.num_states).flat_map(|s| {
                (0..self.num_symbols).filter_map(move |a| {
                    let t = self.table[s * self.num_symbols + a];
                    (t != DEAD).then_some((s, Symbol(a as u32), t as usize))
                })
            }),
        )
    }

    /// Freezes a tree DFA into the dense representation.
    pub fn from_dfa(dfa: &Dfa) -> Self {
        let n = dfa.num_states();
        let k = dfa.alphabet().len();
        let mut table = vec![DEAD; n * k];
        for (from, sym, to) in dfa.transitions() {
            table[from * k + sym.index()] = to as u32;
        }
        let mut finals = BitSet::new(n);
        for s in 0..n {
            if dfa.is_final(s) {
                finals.insert(s as u32);
            }
        }
        DenseDfa {
            alphabet: dfa.alphabet().clone(),
            num_states: n,
            num_symbols: k,
            table,
            initial: dfa.initial_state() as u32,
            finals,
        }
    }

    /// The alphabet of the automaton.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of symbols of the alphabet.
    pub fn num_symbols(&self) -> usize {
        self.num_symbols
    }

    /// The initial state.
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// The final-state bitset.
    pub fn finals(&self) -> &BitSet {
        &self.finals
    }

    /// Whether `state` is final.
    #[inline]
    pub fn is_final(&self, state: u32) -> bool {
        self.finals.contains(state)
    }

    /// The successor of `state` under symbol index `sym`, or `None` when the
    /// run dies.
    #[inline]
    pub fn next(&self, state: u32, sym: usize) -> Option<u32> {
        let t = self.table[state as usize * self.num_symbols + sym];
        (t != DEAD).then_some(t)
    }

    /// The raw next-state entry ([`DEAD`] when missing) — branch-free inner
    /// loops can compare against [`DEAD`] themselves.
    #[inline]
    pub fn next_raw(&self, state: u32, sym: usize) -> u32 {
        self.table[state as usize * self.num_symbols + sym]
    }

    /// The set of states from which a final state is reachable.
    pub fn coreachable(&self) -> BitSet {
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); self.num_states];
        for s in 0..self.num_states {
            for a in 0..self.num_symbols {
                let t = self.table[s * self.num_symbols + a];
                if t != DEAD {
                    rev[t as usize].push(s as u32);
                }
            }
        }
        let mut seen = self.finals.clone();
        let mut queue: VecDeque<u32> = self.finals.iter().collect();
        while let Some(s) = queue.pop_front() {
            for &p in &rev[s as usize] {
                if seen.insert(p) {
                    queue.push_back(p);
                }
            }
        }
        seen
    }

    /// The set of states reachable from the initial state.
    pub fn reachable(&self) -> BitSet {
        let mut seen = BitSet::new(self.num_states);
        seen.insert(self.initial);
        let mut queue = VecDeque::from([self.initial]);
        while let Some(s) = queue.pop_front() {
            for a in 0..self.num_symbols {
                let t = self.table[s as usize * self.num_symbols + a];
                if t != DEAD && seen.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        seen
    }

    /// Whether every state has a transition for every symbol.
    pub fn is_complete(&self) -> bool {
        !self.table.contains(&DEAD)
    }

    /// A complete version of the automaton: missing transitions are
    /// redirected to an explicit non-accepting sink appended as the last
    /// state (only when needed), mirroring [`Dfa::complete`] including the
    /// sink's position in the state numbering.
    pub fn complete(&self) -> DenseDfa {
        if self.is_complete() {
            return self.clone();
        }
        let k = self.num_symbols;
        let n = self.num_states + 1;
        let sink = self.num_states as u32;
        let mut table = Vec::with_capacity(n * k);
        for &t in &self.table {
            table.push(if t == DEAD { sink } else { t });
        }
        table.extend(std::iter::repeat_n(sink, k));
        let mut finals = BitSet::new(n);
        for f in self.finals.iter() {
            finals.insert(f);
        }
        DenseDfa {
            alphabet: self.alphabet.clone(),
            num_states: n,
            num_symbols: k,
            table,
            initial: self.initial,
            finals,
        }
    }

    /// The complement automaton (complete, with accepting states flipped),
    /// mirroring [`Dfa::complement`].
    pub fn complement(&self) -> DenseDfa {
        let mut out = self.complete();
        let mut finals = BitSet::new(out.num_states);
        for s in 0..out.num_states as u32 {
            if !out.finals.contains(s) {
                finals.insert(s);
            }
        }
        out.finals = finals;
        out
    }

    /// Removes unreachable states, renumbering the survivors in ascending
    /// order of their old ids (the initial state is always kept), mirroring
    /// [`Dfa::trim_unreachable`].
    pub fn trim_unreachable(&self) -> DenseDfa {
        let reach = self.reachable();
        let k = self.num_symbols;
        let mut remap = vec![DEAD; self.num_states];
        let mut kept = 0u32;
        for s in 0..self.num_states as u32 {
            if reach.contains(s) {
                remap[s as usize] = kept;
                kept += 1;
            }
        }
        let mut table = Vec::with_capacity(kept as usize * k);
        let mut finals = BitSet::new(kept as usize);
        for s in 0..self.num_states as u32 {
            if !reach.contains(s) {
                continue;
            }
            for a in 0..k {
                let t = self.table[s as usize * k + a];
                table.push(if t == DEAD { DEAD } else { remap[t as usize] });
            }
            if self.finals.contains(s) {
                finals.insert(remap[s as usize]);
            }
        }
        DenseDfa {
            alphabet: self.alphabet.clone(),
            num_states: kept as usize,
            num_symbols: k,
            table,
            initial: remap[self.initial as usize],
            finals,
        }
    }

    /// A shortest accepted word, if any — BFS from the initial state in
    /// symbol order, so ties break exactly like [`Dfa::shortest_word`].
    pub fn shortest_word(&self) -> Option<Vec<Symbol>> {
        if self.finals.contains(self.initial) {
            return Some(Vec::new());
        }
        let mut pred: Vec<(u32, u32)> = vec![(DEAD, 0); self.num_states];
        let mut seen = BitSet::new(self.num_states);
        seen.insert(self.initial);
        let mut queue = VecDeque::from([self.initial]);
        let mut target = None;
        'bfs: while let Some(s) = queue.pop_front() {
            for a in 0..self.num_symbols {
                let t = self.table[s as usize * self.num_symbols + a];
                if t != DEAD && seen.insert(t) {
                    pred[t as usize] = (s, a as u32);
                    if self.finals.contains(t) {
                        target = Some(t);
                        break 'bfs;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut cur = target?;
        let mut word = Vec::new();
        while cur != self.initial {
            let (prev, sym) = pred[cur as usize];
            word.push(Symbol(sym));
            cur = prev;
        }
        word.reverse();
        Some(word)
    }
}

impl From<&Dfa> for DenseDfa {
    fn from(dfa: &Dfa) -> Self {
        DenseDfa::from_dfa(dfa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::from_chars(['a', 'b']).unwrap()
    }

    fn w(alpha: &Alphabet, s: &str) -> Vec<Symbol> {
        alpha.word_from_str(s).unwrap()
    }

    #[test]
    fn bitset_insert_remove_iter() {
        let mut set = BitSet::new(200);
        assert!(set.insert(0));
        assert!(set.insert(63));
        assert!(set.insert(64));
        assert!(set.insert(199));
        assert!(!set.insert(63));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![0, 63, 64, 199]);
        set.remove(64);
        assert!(!set.contains(64));
        assert!(set.contains(199));
        set.clear();
        assert!(set.is_empty());
    }

    #[test]
    fn bitset_intersects() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(70);
        b.insert(71);
        assert!(!a.intersects(&b));
        b.insert(70);
        assert!(a.intersects(&b));
    }

    #[test]
    fn dense_nfa_folds_epsilon_closures() {
        let alpha = ab();
        let a = alpha.symbol("a").unwrap();
        let mut nfa = Nfa::new(alpha.clone());
        let s0 = nfa.add_state();
        let s1 = nfa.add_state();
        let s2 = nfa.add_state();
        let s3 = nfa.add_state();
        nfa.set_initial(s0);
        nfa.set_final(s3);
        nfa.add_epsilon(s0, s1);
        nfa.add_transition(s1, a, s2);
        nfa.add_epsilon(s2, s3);
        let dense = DenseNfa::from_nfa(&nfa);
        // Start closure covers s0 and s1; stepping by `a` lands in {s2, s3}.
        assert_eq!(dense.start(), &[0, 1]);
        assert_eq!(dense.closed_successors(1, a.index()), &[2, 3]);
        assert_eq!(dense.closure(0), &[0, 1]);
        assert!(dense.accepts(&w(&alpha, "a")));
        assert!(!dense.accepts(&w(&alpha, "aa")));
        assert!(!dense.accepts(&[]));
    }

    #[test]
    fn dense_nfa_accepts_agrees_with_tree_nfa() {
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        let nfa = a.concat(&b).star().union(&b.plus());
        let dense = DenseNfa::from_nfa(&nfa);
        for word in ["", "ab", "abab", "b", "bbb", "a", "ba", "abb"] {
            let word = w(&alpha, word);
            assert_eq!(nfa.accepts(&word), dense.accepts(&word), "{word:?}");
        }
    }

    #[test]
    fn dense_dfa_matches_tree_dfa() {
        let alpha = ab();
        let a = alpha.symbol("a").unwrap();
        let b = alpha.symbol("b").unwrap();
        let dfa = Dfa::from_parts(alpha.clone(), 2, 0, [0], [(0, a, 1), (1, b, 0)]);
        let dense = DenseDfa::from_dfa(&dfa);
        assert_eq!(dense.initial(), 0);
        assert_eq!(dense.next(0, a.index()), Some(1));
        assert_eq!(dense.next(0, b.index()), None);
        assert_eq!(dense.next_raw(0, b.index()), DEAD);
        assert!(dense.is_final(0));
        assert!(!dense.is_final(1));
        // state 1 can reach final state 0 via b; both are coreachable.
        let co = dense.coreachable();
        assert!(co.contains(0) && co.contains(1));
    }

    #[test]
    fn reverse_closed_inverts_the_forward_table() {
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let b = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
        let nfa = a.concat(&b).star().union(&b.plus());
        let dense = DenseNfa::from_nfa(&nfa);
        let rev = dense.reverse_closed();
        assert_eq!(rev.num_states(), dense.num_states());
        assert_eq!(rev.num_symbols(), dense.num_symbols());
        for s in 0..dense.num_states() as u32 {
            for sym in 0..dense.num_symbols() {
                for &t in dense.closed_successors(s, sym) {
                    assert!(
                        rev.closed_predecessors(t, sym).contains(&s),
                        "missing reverse edge {s} -{sym}-> {t}"
                    );
                }
                for &t in rev.closed_predecessors(s, sym) {
                    assert!(
                        dense.closed_successors(t, sym).contains(&s),
                        "spurious reverse edge {t} -{sym}-> {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn step_closed_leaves_scratch_empty() {
        let alpha = ab();
        let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
        let nfa = a.star();
        let dense = DenseNfa::from_nfa(&nfa);
        let mut scratch = BitSet::new(dense.num_states());
        let mut out = Vec::new();
        dense.step_closed(dense.start(), 0, &mut scratch, &mut out);
        assert!(scratch.is_empty());
        assert!(dense.any_final(&out));
    }
}
