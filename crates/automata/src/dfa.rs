//! Deterministic finite automata.
//!
//! The rewriting construction of the paper (Section 2) requires the query
//! automaton `A_d` to be **deterministic**: the `Σ_E`-automaton `A'` places an
//! `e`-edge between `s_i` and `s_j` exactly when some word of the view's
//! language drives `A_d` from `s_i` to `s_j`, and complementing `A'` is only
//! sound because a word rejected by a deterministic `A_d` can never also be
//! accepted by it.  The [`Dfa`] type here is therefore the centrepiece that
//! `rewriter` builds on.
//!
//! A `Dfa` may be *partial* (missing transitions mean the run dies); the
//! [`Dfa::complete`] method adds an explicit sink state, which is what
//! complementation requires.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::alphabet::{Alphabet, Symbol};
use crate::nfa::StateId;

/// A deterministic finite automaton, possibly partial.
#[derive(Debug, Clone)]
pub struct Dfa {
    alphabet: Alphabet,
    /// transitions[s][sym] = successor.  Missing entries are dead.
    transitions: Vec<BTreeMap<Symbol, StateId>>,
    initial: StateId,
    finals: Vec<bool>,
}

impl Dfa {
    /// Creates a DFA with a single non-accepting initial state and no
    /// transitions (the empty language).
    pub fn new(alphabet: Alphabet) -> Self {
        Self {
            alphabet,
            transitions: vec![BTreeMap::new()],
            initial: 0,
            finals: vec![false],
        }
    }

    /// Builds a DFA from raw parts.
    ///
    /// # Panics
    /// Panics if `initial` or any transition endpoint is out of range.
    pub fn from_parts(
        alphabet: Alphabet,
        num_states: usize,
        initial: StateId,
        finals: impl IntoIterator<Item = StateId>,
        transitions: impl IntoIterator<Item = (StateId, Symbol, StateId)>,
    ) -> Self {
        assert!(initial < num_states, "initial state out of range");
        let mut dfa = Self {
            alphabet,
            transitions: vec![BTreeMap::new(); num_states],
            initial,
            finals: vec![false; num_states],
        };
        for f in finals {
            assert!(f < num_states, "final state out of range");
            dfa.finals[f] = true;
        }
        for (from, sym, to) in transitions {
            dfa.set_transition(from, sym, to);
        }
        dfa
    }

    /// The automaton accepting the empty language.
    pub fn empty(alphabet: Alphabet) -> Self {
        Self::new(alphabet)
    }

    /// The complete automaton accepting Σ*.
    pub fn universal(alphabet: Alphabet) -> Self {
        let mut dfa = Self::new(alphabet.clone());
        dfa.finals[0] = true;
        for sym in alphabet.symbols() {
            dfa.set_transition(0, sym, 0);
        }
        dfa
    }

    /// The alphabet of the automaton.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Number of (defined) transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.iter().map(BTreeMap::len).sum()
    }

    /// The initial state.
    pub fn initial_state(&self) -> StateId {
        self.initial
    }

    /// Sets the initial state.
    pub fn set_initial(&mut self, s: StateId) {
        assert!(s < self.num_states());
        self.initial = s;
    }

    /// Whether `s` is accepting.
    pub fn is_final(&self, s: StateId) -> bool {
        self.finals[s]
    }

    /// The set of accepting states.
    pub fn final_states(&self) -> BTreeSet<StateId> {
        self.finals
            .iter()
            .enumerate()
            .filter_map(|(s, &f)| f.then_some(s))
            .collect()
    }

    /// Marks `s` accepting (`true`) or rejecting (`false`).
    pub fn set_final(&mut self, s: StateId, accepting: bool) {
        self.finals[s] = accepting;
    }

    /// Adds a fresh state, returning its id.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        self.transitions.push(BTreeMap::new());
        self.finals.push(accepting);
        self.transitions.len() - 1
    }

    /// Sets the transition `from --sym--> to`, replacing any previous target.
    pub fn set_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        assert!(from < self.num_states() && to < self.num_states());
        assert!(
            sym.index() < self.alphabet.len(),
            "symbol {sym} not in alphabet {}",
            self.alphabet.render()
        );
        self.transitions[from].insert(sym, to);
    }

    /// The successor of `s` under `sym`, if defined.
    pub fn next_state(&self, s: StateId, sym: Symbol) -> Option<StateId> {
        self.transitions[s].get(&sym).copied()
    }

    /// Iterates over the transitions leaving `s`.
    pub fn transitions_from(&self, s: StateId) -> impl Iterator<Item = (Symbol, StateId)> + '_ {
        self.transitions[s].iter().map(|(&sym, &to)| (sym, to))
    }

    /// Iterates over all transitions as `(from, sym, to)` triples.
    pub fn transitions(&self) -> impl Iterator<Item = (StateId, Symbol, StateId)> + '_ {
        self.transitions
            .iter()
            .enumerate()
            .flat_map(|(from, m)| m.iter().map(move |(&sym, &to)| (from, sym, to)))
    }

    /// Runs the automaton on `word` from the initial state, returning the
    /// final state reached, or `None` if the run dies.
    pub fn run(&self, word: &[Symbol]) -> Option<StateId> {
        self.run_from(self.initial, word)
    }

    /// Runs the automaton on `word` starting from `state`.
    pub fn run_from(&self, state: StateId, word: &[Symbol]) -> Option<StateId> {
        let mut current = state;
        for &sym in word {
            current = self.next_state(current, sym)?;
        }
        Some(current)
    }

    /// Whether the automaton accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        self.run(word).map(|s| self.finals[s]).unwrap_or(false)
    }

    /// Whether the automaton accepts the word written as symbol names.
    pub fn accepts_names(&self, names: &[&str]) -> bool {
        match self.alphabet.word(names) {
            Ok(w) => self.accepts(&w),
            Err(_) => false,
        }
    }

    /// Whether every state has a transition for every alphabet symbol.
    pub fn is_complete(&self) -> bool {
        self.transitions
            .iter()
            .all(|m| m.len() == self.alphabet.len())
    }

    /// Returns a complete version of the automaton: missing transitions are
    /// redirected to an explicit non-accepting sink state (added only when
    /// needed).
    pub fn complete(&self) -> Dfa {
        if self.is_complete() {
            return self.clone();
        }
        let mut out = self.clone();
        let sink = out.add_state(false);
        for s in 0..out.num_states() {
            for sym in out.alphabet.clone().symbols() {
                if out.next_state(s, sym).is_none() {
                    out.set_transition(s, sym, sink);
                }
            }
        }
        out
    }

    /// The complement automaton, accepting exactly the words this automaton
    /// rejects.  The result is always complete.
    pub fn complement(&self) -> Dfa {
        let mut out = self.complete();
        for f in out.finals.iter_mut() {
            *f = !*f;
        }
        out
    }

    /// States reachable from the initial state.
    pub fn reachable_states(&self) -> BTreeSet<StateId> {
        let mut seen = BTreeSet::from([self.initial]);
        let mut queue = VecDeque::from([self.initial]);
        while let Some(s) = queue.pop_front() {
            for (_, to) in self.transitions_from(s) {
                if seen.insert(to) {
                    queue.push_back(to);
                }
            }
        }
        seen
    }

    /// States from which some accepting state is reachable.
    pub fn coreachable_states(&self) -> BTreeSet<StateId> {
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); self.num_states()];
        for (from, _, to) in self.transitions() {
            rev[to].push(from);
        }
        let mut seen: BTreeSet<StateId> = self.final_states();
        let mut queue: VecDeque<StateId> = seen.iter().copied().collect();
        while let Some(s) = queue.pop_front() {
            for &p in &rev[s] {
                if seen.insert(p) {
                    queue.push_back(p);
                }
            }
        }
        seen
    }

    /// Removes unreachable states (keeping the language).  The initial state
    /// is always kept.  Note that trimming a complete automaton may make it
    /// partial again (the sink disappears if it only served completeness).
    pub fn trim_unreachable(&self) -> Dfa {
        let reach = self.reachable_states();
        let keep: Vec<StateId> = (0..self.num_states()).filter(|s| reach.contains(s)).collect();
        let mut remap = vec![usize::MAX; self.num_states()];
        for (new, &old) in keep.iter().enumerate() {
            remap[old] = new;
        }
        let mut out = Dfa {
            alphabet: self.alphabet.clone(),
            transitions: vec![BTreeMap::new(); keep.len()],
            initial: remap[self.initial],
            finals: vec![false; keep.len()],
        };
        for &old in &keep {
            let new = remap[old];
            out.finals[new] = self.finals[old];
            for (sym, to) in self.transitions_from(old) {
                if reach.contains(&to) {
                    out.transitions[new].insert(sym, remap[to]);
                }
            }
        }
        out
    }

    /// Whether the language is empty.
    pub fn is_empty_language(&self) -> bool {
        self.reachable_states()
            .iter()
            .all(|&s| !self.finals[s])
    }

    /// Whether the language is Σ* (accepts every word).
    pub fn is_universal_language(&self) -> bool {
        self.complement().is_empty_language()
    }

    /// A shortest accepted word, if any.
    pub fn shortest_word(&self) -> Option<Vec<Symbol>> {
        let mut pred: Vec<Option<(StateId, Symbol)>> = vec![None; self.num_states()];
        let mut seen = vec![false; self.num_states()];
        let mut queue = VecDeque::from([self.initial]);
        seen[self.initial] = true;
        let mut target = None;
        if self.finals[self.initial] {
            target = Some(self.initial);
        }
        'bfs: while let Some(s) = queue.pop_front() {
            if target.is_some() {
                break;
            }
            for (sym, to) in self.transitions_from(s) {
                if !seen[to] {
                    seen[to] = true;
                    pred[to] = Some((s, sym));
                    if self.finals[to] {
                        target = Some(to);
                        break 'bfs;
                    }
                    queue.push_back(to);
                }
            }
        }
        let mut cur = target?;
        let mut word = Vec::new();
        while let Some((prev, sym)) = pred[cur] {
            word.push(sym);
            cur = prev;
        }
        word.reverse();
        Some(word)
    }

    /// Enumerates up to `limit` accepted words in length-lexicographic order.
    /// Useful in tests and for displaying sample members of a language.
    pub fn sample_words(&self, limit: usize) -> Vec<Vec<Symbol>> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        // BFS over (state, word) pairs; words expand in length-lex order
        // because the transition map is ordered by symbol.
        let mut queue: VecDeque<(StateId, Vec<Symbol>)> = VecDeque::new();
        queue.push_back((self.initial, Vec::new()));
        // Cap the frontier to avoid explosion on large automata.
        let max_frontier = 100_000;
        while let Some((s, word)) = queue.pop_front() {
            if self.finals[s] {
                out.push(word.clone());
                if out.len() >= limit {
                    break;
                }
            }
            if queue.len() > max_frontier {
                break;
            }
            for (sym, to) in self.transitions_from(s) {
                let mut w = word.clone();
                w.push(sym);
                queue.push_back((to, w));
            }
        }
        out
    }

    /// Counts the accepted words of exactly length `len` (may be large; uses
    /// u128 and saturates).
    pub fn count_words_of_length(&self, len: usize) -> u128 {
        let mut counts = vec![0u128; self.num_states()];
        counts[self.initial] = 1;
        for _ in 0..len {
            let mut next = vec![0u128; self.num_states()];
            for (s, &count) in counts.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                for (_, to) in self.transitions_from(s) {
                    next[to] = next[to].saturating_add(count);
                }
            }
            counts = next;
        }
        counts
            .iter()
            .enumerate()
            .filter(|&(s, _)| self.finals[s])
            .fold(0u128, |acc, (_, &c)| acc.saturating_add(c))
    }

    /// Renders the automaton compactly for debugging/logging.
    pub fn describe(&self) -> String {
        format!(
            "DFA(states={}, transitions={}, initial={}, finals={:?}, complete={})",
            self.num_states(),
            self.num_transitions(),
            self.initial,
            self.final_states(),
            self.is_complete()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::from_chars(['a', 'b']).unwrap()
    }

    /// DFA for the language (ab)*  over {a,b}.
    fn ab_star() -> Dfa {
        let alpha = ab();
        let a = alpha.symbol("a").unwrap();
        let b = alpha.symbol("b").unwrap();
        Dfa::from_parts(alpha, 2, 0, [0], [(0, a, 1), (1, b, 0)])
    }

    fn w(alpha: &Alphabet, s: &str) -> Vec<Symbol> {
        alpha.word_from_str(s).unwrap()
    }

    #[test]
    fn accepts_and_rejects() {
        let dfa = ab_star();
        let alpha = dfa.alphabet().clone();
        assert!(dfa.accepts(&[]));
        assert!(dfa.accepts(&w(&alpha, "ab")));
        assert!(dfa.accepts(&w(&alpha, "abab")));
        assert!(!dfa.accepts(&w(&alpha, "a")));
        assert!(!dfa.accepts(&w(&alpha, "ba")));
        assert!(dfa.accepts_names(&["a", "b"]));
        assert!(!dfa.accepts_names(&["nope"]));
    }

    #[test]
    fn completion_adds_sink_once() {
        let dfa = ab_star();
        assert!(!dfa.is_complete());
        let complete = dfa.complete();
        assert!(complete.is_complete());
        assert_eq!(complete.num_states(), 3);
        // Completing again is a no-op.
        assert_eq!(complete.complete().num_states(), 3);
        // Language unchanged.
        let alpha = dfa.alphabet().clone();
        assert!(complete.accepts(&w(&alpha, "abab")));
        assert!(!complete.accepts(&w(&alpha, "aa")));
    }

    #[test]
    fn complement_flips_membership() {
        let dfa = ab_star();
        let alpha = dfa.alphabet().clone();
        let comp = dfa.complement();
        assert!(!comp.accepts(&[]));
        assert!(!comp.accepts(&w(&alpha, "ab")));
        assert!(comp.accepts(&w(&alpha, "a")));
        assert!(comp.accepts(&w(&alpha, "ba")));
        // Double complement restores the language on sample words.
        let cc = comp.complement();
        for word in ["", "a", "b", "ab", "ba", "abab", "abb"] {
            let word = w(&alpha, word);
            assert_eq!(dfa.accepts(&word), cc.accepts(&word));
        }
    }

    #[test]
    fn empty_and_universal() {
        let alpha = ab();
        let empty = Dfa::empty(alpha.clone());
        assert!(empty.is_empty_language());
        assert!(!empty.is_universal_language());
        let univ = Dfa::universal(alpha.clone());
        assert!(univ.is_universal_language());
        assert!(!univ.is_empty_language());
        assert!(univ.accepts(&w(&alpha, "abba")));
    }

    #[test]
    fn shortest_word_finds_minimum() {
        let dfa = ab_star();
        assert_eq!(dfa.shortest_word(), Some(vec![]));
        // Language a·b (single word) has shortest word ab.
        let alpha = ab();
        let a = alpha.symbol("a").unwrap();
        let b = alpha.symbol("b").unwrap();
        let dfa = Dfa::from_parts(alpha.clone(), 3, 0, [2], [(0, a, 1), (1, b, 2)]);
        assert_eq!(dfa.shortest_word(), Some(w(&alpha, "ab")));
        assert_eq!(Dfa::empty(alpha).shortest_word(), None);
    }

    #[test]
    fn trim_unreachable_drops_states() {
        let alpha = ab();
        let a = alpha.symbol("a").unwrap();
        let mut dfa = Dfa::from_parts(alpha.clone(), 2, 0, [1], [(0, a, 1)]);
        let orphan = dfa.add_state(true);
        dfa.set_transition(orphan, a, orphan);
        let trimmed = dfa.trim_unreachable();
        assert_eq!(trimmed.num_states(), 2);
        assert!(trimmed.accepts(&w(&alpha, "a")));
    }

    #[test]
    fn sample_words_in_length_order() {
        let dfa = ab_star();
        let alpha = dfa.alphabet().clone();
        let samples = dfa.sample_words(3);
        assert_eq!(samples, vec![vec![], w(&alpha, "ab"), w(&alpha, "abab")]);
        assert!(dfa.sample_words(0).is_empty());
    }

    #[test]
    fn count_words_of_length() {
        let alpha = ab();
        let univ = Dfa::universal(alpha.clone());
        assert_eq!(univ.count_words_of_length(0), 1);
        assert_eq!(univ.count_words_of_length(3), 8);
        let dfa = ab_star();
        assert_eq!(dfa.count_words_of_length(0), 1);
        assert_eq!(dfa.count_words_of_length(1), 0);
        assert_eq!(dfa.count_words_of_length(2), 1);
        assert_eq!(dfa.count_words_of_length(4), 1);
    }

    #[test]
    fn run_from_intermediate_state() {
        let dfa = ab_star();
        let alpha = dfa.alphabet().clone();
        let b = alpha.symbol("b").unwrap();
        assert_eq!(dfa.run_from(1, &[b]), Some(0));
        assert_eq!(dfa.run_from(1, &w(&alpha, "a")), None);
    }

    #[test]
    fn coreachable_includes_paths_to_finals() {
        let dfa = ab_star().complete();
        let co = dfa.coreachable_states();
        // the sink (state 2) cannot reach a final state
        assert!(!co.contains(&2));
        assert!(co.contains(&0));
        assert!(co.contains(&1));
    }

    #[test]
    fn describe_mentions_counts() {
        let d = ab_star().describe();
        assert!(d.contains("states=2"));
    }
}
