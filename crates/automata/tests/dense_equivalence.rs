//! Differential tests: the dense core must be answer-identical to the seed's
//! tree-based algorithms on randomized inputs.
//!
//! Each property runs hundreds of seeded random cases comparing the dense
//! paths (subset construction on `DenseNfa`, bitset reachability sweeps,
//! dense containment) against the retained `*_baseline` implementations and
//! against independent oracles (`word_reaches`, the explicit-complement
//! containment check).

use automata::{
    determinize, determinize_with_subsets, determinize_with_subsets_baseline, dfa_subset_of_nfa,
    dfa_subset_of_nfa_explicit, random_dfa, random_nfa, random_word, word_reachability_relation,
    word_reachability_relation_baseline, word_reaches, Alphabet, DenseNfa, Nfa,
    RandomAutomatonConfig,
};

fn alphabet(size: usize) -> Alphabet {
    Alphabet::from_names((0..size).map(|i| ((b'a' + i as u8) as char).to_string()))
        .expect("distinct letters")
}

/// Mixes sizes, densities and alphabet widths so the sweep hits sparse and
/// dense automata, with and without unreachable parts.
fn nfa_config(case: u64) -> (Alphabet, RandomAutomatonConfig) {
    let alpha = alphabet(2 + (case % 3) as usize);
    let config = RandomAutomatonConfig {
        num_states: 2 + (case % 9) as usize,
        density: 0.05 + (case % 7) as f64 * 0.07,
        final_probability: 0.1 + (case % 5) as f64 * 0.15,
    };
    (alpha, config)
}

#[test]
fn dense_nfa_acceptance_agrees_with_tree_nfa() {
    let mut checked_words = 0usize;
    for case in 0..250u64 {
        let (alpha, config) = nfa_config(case);
        let nfa = random_nfa(&alpha, &config, case);
        let dense = DenseNfa::from_nfa(&nfa);
        for wseed in 0..8u64 {
            let word = random_word(&alpha, (wseed % 7) as usize, case * 131 + wseed);
            assert_eq!(
                nfa.accepts(&word),
                dense.accepts(&word),
                "case {case}, word {word:?}"
            );
            checked_words += 1;
        }
    }
    assert!(checked_words >= 200 * 8);
}

#[test]
fn dense_determinization_is_structurally_identical_to_baseline() {
    // Both constructions intern subsets breadth-first in symbol order, so the
    // dense path must reproduce the baseline automaton *exactly* — state
    // numbering, transitions, finals and the subset map — on 250 random NFAs.
    for case in 0..250u64 {
        let (alpha, config) = nfa_config(case);
        let nfa = random_nfa(&alpha, &config, case ^ 0xdeca_f000);
        let dense = determinize_with_subsets(&nfa);
        let baseline = determinize_with_subsets_baseline(&nfa);
        assert_eq!(dense.subsets, baseline.subsets, "case {case}");
        assert_eq!(
            dense.dfa.initial_state(),
            baseline.dfa.initial_state(),
            "case {case}"
        );
        assert_eq!(
            dense.dfa.final_states(),
            baseline.dfa.final_states(),
            "case {case}"
        );
        assert_eq!(
            dense.dfa.transitions().collect::<Vec<_>>(),
            baseline.dfa.transitions().collect::<Vec<_>>(),
            "case {case}"
        );
    }
}

#[test]
fn dense_determinization_handles_epsilon_heavy_automata() {
    // Rational operations sprinkle ε-transitions everywhere; build layered
    // expressions and check the dense and baseline determinizations agree.
    let alpha = alphabet(2);
    let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
    let b = Nfa::symbol(alpha.clone(), alpha.symbol("b").unwrap());
    let mut cases: Vec<Nfa> = vec![
        a.star().concat(&b.star()).star(),
        a.union(&b).plus().optional(),
        a.concat(&b).star().union(&b.concat(&a).star()),
    ];
    for seed in 0..40u64 {
        // Random compositions of the two letter automata.
        let mut acc = if seed % 2 == 0 { a.clone() } else { b.clone() };
        for step in 0..(seed % 5) {
            acc = match (seed + step) % 4 {
                0 => acc.union(&a).star(),
                1 => acc.concat(&b).optional(),
                2 => acc.plus(),
                _ => acc.reverse().union(&b),
            };
        }
        cases.push(acc);
    }
    for (i, nfa) in cases.iter().enumerate() {
        let dense = determinize_with_subsets(nfa);
        let baseline = determinize_with_subsets_baseline(nfa);
        assert_eq!(dense.subsets, baseline.subsets, "case {i}");
        assert_eq!(
            dense.dfa.transitions().collect::<Vec<_>>(),
            baseline.dfa.transitions().collect::<Vec<_>>(),
            "case {i}"
        );
    }
}

#[test]
fn worst_case_blowup_family_agrees_and_blows_up() {
    // (a+b)*·a·(a+b)^k needs ≥ 2^(k+1) DFA states; the dense construction
    // must both reproduce the baseline exactly and hit the bound.
    let alpha = alphabet(2);
    let a = Nfa::symbol(alpha.clone(), alpha.symbol("a").unwrap());
    for k in [2usize, 4, 6, 8] {
        let mut nfa = Nfa::universal(alpha.clone()).concat(&a);
        for _ in 0..k {
            nfa = nfa.concat(&Nfa::any_symbol(alpha.clone()));
        }
        let dense = determinize_with_subsets(&nfa);
        let baseline = determinize_with_subsets_baseline(&nfa);
        assert_eq!(dense.dfa.num_states(), baseline.dfa.num_states());
        assert_eq!(dense.subsets, baseline.subsets);
        assert!(
            dense.dfa.num_states() >= 1 << (k + 1),
            "k={k}: got {} states",
            dense.dfa.num_states()
        );
    }
}

#[test]
fn dense_reachability_relation_matches_baseline() {
    for case in 0..220u64 {
        let alpha = alphabet(2 + (case % 2) as usize);
        let dfa_config = RandomAutomatonConfig {
            num_states: 2 + (case % 6) as usize,
            density: 0.3 + (case % 4) as f64 * 0.15,
            final_probability: 0.3,
        };
        let view_config = RandomAutomatonConfig {
            num_states: 2 + (case % 4) as usize,
            density: 0.2 + (case % 5) as f64 * 0.1,
            final_probability: 0.4,
        };
        let dfa = random_dfa(&alpha, &dfa_config, case * 3 + 1);
        let view = random_nfa(&alpha, &view_config, case * 7 + 2);
        let dense = word_reachability_relation(&dfa, &view);
        let baseline = word_reachability_relation_baseline(&dfa, &view);
        assert_eq!(dense, baseline, "case {case}");
    }
}

#[test]
fn dense_reachability_relation_matches_per_pair_oracle() {
    // `word_reaches` goes through the (tree-based) product-emptiness witness
    // search — an independent oracle for the batched dense sweep.
    for case in 0..40u64 {
        let alpha = alphabet(2);
        let config = RandomAutomatonConfig {
            num_states: 4,
            density: 0.35,
            final_probability: 0.3,
        };
        let dfa = random_dfa(&alpha, &config, case + 1000);
        let view = random_nfa(&alpha, &config, case + 2000);
        let relation = word_reachability_relation(&dfa, &view);
        for si in 0..dfa.num_states() {
            for sj in 0..dfa.num_states() {
                assert_eq!(
                    relation.contains(&(si, sj)),
                    word_reaches(&dfa, &view, si, sj),
                    "case {case}, pair ({si},{sj})"
                );
            }
        }
    }
}

#[test]
fn dense_containment_agrees_with_explicit_complement() {
    let mut holds = 0usize;
    let mut fails = 0usize;
    for case in 0..220u64 {
        let alpha = alphabet(2);
        let config = RandomAutomatonConfig {
            num_states: 2 + (case % 5) as usize,
            density: 0.25 + (case % 3) as f64 * 0.15,
            final_probability: 0.35,
        };
        let lhs = determinize(&random_nfa(&alpha, &config, case * 11 + 5));
        let rhs = random_nfa(&alpha, &config, case * 13 + 9);
        let dense = dfa_subset_of_nfa(&lhs, &rhs);
        let explicit = dfa_subset_of_nfa_explicit(&lhs, &rhs);
        assert_eq!(dense.holds(), explicit.holds(), "case {case}");
        match dense.counterexample() {
            None => holds += 1,
            Some(cex) => {
                // The counterexample must be a shortest witness: in L(lhs),
                // not in L(rhs), and no shorter than the explicit one.
                assert!(lhs.accepts(cex), "case {case}: cex not in lhs");
                assert!(!rhs.accepts(cex), "case {case}: cex in rhs");
                let explicit_len = explicit.counterexample().expect("both fail").len();
                assert_eq!(cex.len(), explicit_len, "case {case}: not shortest");
                fails += 1;
            }
        }
    }
    // The sweep must exercise both outcomes to mean anything.
    assert!(holds >= 10, "only {holds} holding cases");
    assert!(fails >= 10, "only {fails} failing cases");
}
