//! Differential tests for the dense algorithm layer (PR "dense end-to-end"):
//! Hopcroft minimization, the product constructions, and complement must be
//! **structurally identical** — state numbering, transitions, finals — to
//! the retained tree baselines on randomized inputs, mirroring
//! `dense_equivalence.rs` for the PR 1 algorithms.
//!
//! Every suite runs ≥ 200 seeded random cases.  On a structural mismatch
//! the assertion message carries a shortest distinguishing word (or reports
//! language equality, isolating the defect to numbering), so failures are
//! immediately actionable.

use automata::{
    complement_dense, determinize, dfa_subset_of_nfa_explicit, dfa_subset_of_nfa_explicit_baseline,
    intersect_dense, intersect_dfa_baseline, intersect_dfa_nfa, intersect_dfa_nfa_baseline,
    minimize, minimize_baseline, random_dfa, random_nfa, union_dense, union_dfa_baseline, Alphabet,
    DenseDfa, Dfa, Nfa, RandomAutomatonConfig,
};

fn alphabet(size: usize) -> Alphabet {
    Alphabet::from_names((0..size).map(|i| ((b'a' + i as u8) as char).to_string()))
        .expect("distinct letters")
}

fn dfa_config(case: u64) -> (Alphabet, RandomAutomatonConfig) {
    let alpha = alphabet(2 + (case % 3) as usize);
    let config = RandomAutomatonConfig {
        num_states: 2 + (case % 8) as usize,
        density: 0.15 + (case % 6) as f64 * 0.12,
        final_probability: 0.15 + (case % 4) as f64 * 0.2,
    };
    (alpha, config)
}

/// Asserts two DFAs coincide structurally; on mismatch the panic message
/// includes a shortest distinguishing word when the *languages* differ (the
/// worst kind of failure), or flags a pure numbering divergence otherwise.
fn assert_dfa_identical(ours: &Dfa, baseline: &Dfa, ctx: &str) {
    let structural = ours.num_states() == baseline.num_states()
        && ours.initial_state() == baseline.initial_state()
        && ours.final_states() == baseline.final_states()
        && ours.transitions().collect::<Vec<_>>() == baseline.transitions().collect::<Vec<_>>();
    if structural {
        return;
    }
    let diagnosis = match automata::dfa_equivalent(ours, baseline) {
        automata::Containment::Holds => "languages agree (numbering diverged)".to_string(),
        automata::Containment::FailsWith(word) => {
            format!("shortest counterexample: {word:?}")
        }
    };
    panic!(
        "{ctx}: dense result diverged from baseline — ours {} vs baseline {}; {diagnosis}",
        ours.describe(),
        baseline.describe()
    );
}

fn assert_nfa_identical(ours: &Nfa, baseline: &Nfa, ctx: &str) {
    assert_eq!(ours.num_states(), baseline.num_states(), "{ctx}: state count");
    assert_eq!(
        ours.initial_states(),
        baseline.initial_states(),
        "{ctx}: initial states"
    );
    assert_eq!(ours.final_states(), baseline.final_states(), "{ctx}: final states");
    assert_eq!(
        ours.transitions().collect::<Vec<_>>(),
        baseline.transitions().collect::<Vec<_>>(),
        "{ctx}: transitions"
    );
}

#[test]
fn dense_minimize_matches_moore_structurally() {
    let mut cases = 0usize;
    for case in 0..220u64 {
        let (alpha, config) = dfa_config(case);
        // Raw random DFAs stress the trim + complete pre-steps; determinized
        // random NFAs stress realistic subset-construction outputs.
        let inputs: Vec<Dfa> = vec![
            random_dfa(&alpha, &config, case * 5 + 1),
            determinize(&random_nfa(&alpha, &config, case * 5 + 2)),
        ];
        for (i, dfa) in inputs.iter().enumerate() {
            let ours = minimize(dfa);
            let moore = minimize_baseline(dfa);
            assert_dfa_identical(&ours, &moore, &format!("minimize case {case}.{i}"));
            // Minimality invariants: idempotent, never larger than the input
            // modulo completion's sink.
            assert!(ours.num_states() <= dfa.num_states() + 1, "case {case}.{i}");
            assert_eq!(
                minimize(&ours).num_states(),
                ours.num_states(),
                "case {case}.{i}: not idempotent"
            );
            cases += 1;
        }
    }
    assert!(cases >= 200, "only {cases} minimize cases ran");
}

#[test]
fn dense_intersect_matches_baseline_structurally() {
    let mut cases = 0usize;
    let mut nonempty = 0usize;
    for case in 0..210u64 {
        let (alpha, config) = dfa_config(case);
        let a = random_dfa(&alpha, &config, case * 11 + 3);
        let b = random_dfa(&alpha, &config, case * 11 + 7);
        let ours = intersect_dense(&DenseDfa::from_dfa(&a), &DenseDfa::from_dfa(&b)).to_dfa();
        let baseline = intersect_dfa_baseline(&a, &b);
        assert_dfa_identical(&ours, &baseline, &format!("intersect case {case}"));
        if !ours.is_empty_language() {
            nonempty += 1;
        }
        cases += 1;
    }
    assert!(cases >= 200, "only {cases} intersect cases ran");
    assert!(nonempty >= 20, "only {nonempty} nonempty intersections — sweep too weak");
}

#[test]
fn dense_union_matches_baseline_structurally() {
    let mut cases = 0usize;
    for case in 0..210u64 {
        let (alpha, config) = dfa_config(case ^ 0x5a5a);
        let a = random_dfa(&alpha, &config, case * 13 + 1);
        let b = random_dfa(&alpha, &config, case * 13 + 9);
        let ours = union_dense(&DenseDfa::from_dfa(&a), &DenseDfa::from_dfa(&b)).to_dfa();
        let baseline = union_dfa_baseline(&a, &b);
        assert_dfa_identical(&ours, &baseline, &format!("union case {case}"));
        cases += 1;
    }
    assert!(cases >= 200, "only {cases} union cases ran");
}

#[test]
fn dense_complement_matches_baseline_structurally() {
    let mut cases = 0usize;
    for case in 0..210u64 {
        let (alpha, config) = dfa_config(case ^ 0xc0c0);
        let dfa = random_dfa(&alpha, &config, case * 17 + 5);
        let ours = complement_dense(&DenseDfa::from_dfa(&dfa)).to_dfa();
        let baseline = dfa.complement();
        assert_dfa_identical(&ours, &baseline, &format!("complement case {case}"));
        // Double complement restores the completed automaton's language.
        let back = complement_dense(&DenseDfa::from_dfa(&ours)).to_dfa();
        assert!(
            automata::dfa_equivalent(&back, &dfa.complete()).holds(),
            "complement case {case}: involution broken"
        );
        cases += 1;
    }
    assert!(cases >= 200, "only {cases} complement cases ran");
}

#[test]
fn dense_dfa_nfa_product_matches_baseline_structurally() {
    let mut cases = 0usize;
    for case in 0..210u64 {
        let (alpha, config) = dfa_config(case ^ 0x1234);
        let a = random_dfa(&alpha, &config, case * 19 + 2);
        let b = random_nfa(&alpha, &config, case * 19 + 6);
        let ours = intersect_dfa_nfa(&a, &b);
        let baseline = intersect_dfa_nfa_baseline(&a, &b);
        assert_nfa_identical(&ours, &baseline, &format!("dfa×nfa case {case}"));
        cases += 1;
    }
    assert!(cases >= 200, "only {cases} dfa×nfa cases ran");
}

#[test]
fn dense_explicit_containment_matches_tree_chain() {
    // The explicit-complement containment chains determinize + complement +
    // intersect + shortest-word; the dense and tree chains must agree on the
    // verdict and produce equal-length (shortest) counterexamples.
    let mut holds = 0usize;
    let mut fails = 0usize;
    for case in 0..220u64 {
        let alpha = alphabet(2);
        let config = RandomAutomatonConfig {
            num_states: 2 + (case % 5) as usize,
            density: 0.25 + (case % 3) as f64 * 0.15,
            final_probability: 0.35,
        };
        let lhs = determinize(&random_nfa(&alpha, &config, case * 23 + 5));
        let rhs = random_nfa(&alpha, &config, case * 23 + 11);
        let dense = dfa_subset_of_nfa_explicit(&lhs, &rhs);
        let tree = dfa_subset_of_nfa_explicit_baseline(&lhs, &rhs);
        assert_eq!(dense.holds(), tree.holds(), "case {case}");
        match (dense.counterexample(), tree.counterexample()) {
            (None, None) => holds += 1,
            (Some(d), Some(t)) => {
                assert_eq!(d.len(), t.len(), "case {case}: counterexample length");
                assert!(lhs.accepts(d) && !rhs.accepts(d), "case {case}: bad witness");
                fails += 1;
            }
            _ => unreachable!("verdicts agree"),
        }
    }
    assert!(holds >= 10, "only {holds} holding cases");
    assert!(fails >= 10, "only {fails} failing cases");
}
