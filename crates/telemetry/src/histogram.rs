//! Lock-free log-bucketed latency histogram.


// ordering: Relaxed throughout — the histogram is monotone statistics shared
// with detached observers; counts may arrive late or torn across buckets, and
// a snapshot that mixes adjacent recordings is still a valid histogram.
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of sub-bucket bits: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative bucket width (and
/// hence the percentile error) by `1 / 2^SUB_BITS` = 6.25%.
const SUB_BITS: u32 = 4;
const SUB_COUNT: u64 = 1 << SUB_BITS;
const SUB_MASK: u64 = SUB_COUNT - 1;

/// Total bucket count: values `< 16` get exact unit buckets (indices
/// `0..16`), and each of the 60 remaining octaves (`2^4 ..= 2^63`)
/// contributes 16 sub-buckets.
const NUM_BUCKETS: usize = (61 << SUB_BITS) as usize; // 976

/// A lock-free latency histogram with logarithmic buckets (HDR-style).
///
/// Values are `u64`s — by convention **microseconds** throughout this
/// workspace. Recording is a single relaxed atomic increment (plus a
/// saturating sum add and a `fetch_max`), so a histogram can be shared
/// freely across worker threads without contention on distinct buckets.
///
/// Buckets below 16 are exact; above that each power-of-two range is split
/// into 16 linear sub-buckets, so any reported percentile is within 6.25%
/// (one sub-bucket width) of the true sample at that rank — always rounding
/// **up** to the bucket's upper edge, never under-reporting a latency.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Maps a value to its bucket index. Monotone in `value`; exact below 16.
    pub fn bucket_index(value: u64) -> usize {
        if value < SUB_COUNT {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros(); // 4..=63
            let octave = (msb - SUB_BITS + 1) as u64; // 1..=60
            let mantissa = (value >> (msb - SUB_BITS)) & SUB_MASK;
            ((octave << SUB_BITS) | mantissa) as usize
        }
    }

    /// The smallest value mapping to bucket `index`.
    pub fn bucket_low(index: usize) -> u64 {
        let index = index as u64;
        if index < SUB_COUNT {
            index
        } else {
            let octave = index >> SUB_BITS;
            let mantissa = index & SUB_MASK;
            (SUB_COUNT + mantissa) << (octave - 1)
        }
    }

    /// The largest value mapping to bucket `index`.
    pub fn bucket_high(index: usize) -> u64 {
        if index + 1 >= NUM_BUCKETS {
            u64::MAX
        } else {
            Self::bucket_low(index + 1) - 1
        }
    }

    /// Records one value (microseconds by convention). Lock-free.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate the running sum rather than wrapping on pathological input.
        let mut sum = self.sum.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(value);
            match self
                .sum
                .compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => sum = actual,
            }
        }
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] as whole microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max_us(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The value at quantile `p` in `[0, 1]` (nearest-rank, reported as the
    /// containing bucket's upper edge — within 6.25% above the true sample).
    /// Returns 0 for an empty histogram. The reported value is additionally
    /// clamped to [`Histogram::max_us`], so `percentile(1.0)` equals the
    /// exact maximum.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        let target = ((p * count as f64).ceil() as u64).clamp(1, count);
        let mut cumulative = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return Self::bucket_high(index).min(self.max_us());
            }
        }
        self.max_us()
    }

    /// [`Histogram::percentile`] converted to milliseconds as `f64`.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        self.percentile(p) as f64 / 1000.0
    }

    /// Arithmetic mean of recorded values in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Approximate number of samples `<= bound`: counts every bucket whose
    /// entire range lies at or below `bound` (an under-estimate by at most
    /// one bucket's population). Used for Prometheus cumulative buckets.
    pub fn count_at_most(&self, bound: u64) -> u64 {
        let mut total = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            if Self::bucket_high(index) > bound {
                break;
            }
            total += bucket.load(Ordering::Relaxed);
        }
        total
    }

    /// Adds every sample of `other` into `self`, bucket-wise. Concurrent
    /// recorders on either side observe a consistent (if momentarily
    /// partial) merge.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let other_sum = other.sum.load(Ordering::Relaxed);
        let mut sum = self.sum.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(other_sum);
            match self
                .sum
                .compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => sum = actual,
            }
        }
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Resets every bucket and counter to zero. Not atomic with respect to
    /// concurrent recorders (a racing `record` may survive); intended for
    /// tests and bench-harness reuse.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(Histogram::bucket_index(v), v as usize);
            assert_eq!(Histogram::bucket_low(v as usize), v);
            assert_eq!(Histogram::bucket_high(v as usize), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_consistent_with_edges() {
        let probes: Vec<u64> = (0..200)
            .map(|i| i * 7)
            .chain((0..63).flat_map(|s| {
                let base = 1u64 << s;
                [base - 1, base, base + 1, base + base / 3]
            }))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        let mut last_index = 0usize;
        for v in sorted {
            let index = Histogram::bucket_index(v);
            assert!(index >= last_index, "index not monotone at {v}");
            assert!(index < NUM_BUCKETS);
            assert!(
                Histogram::bucket_low(index) <= v && v <= Histogram::bucket_high(index),
                "value {v} outside bucket {index} [{}, {}]",
                Histogram::bucket_low(index),
                Histogram::bucket_high(index)
            );
            last_index = index;
        }
    }

    #[test]
    fn bucket_edges_tile_the_u64_range() {
        for index in 0..NUM_BUCKETS - 1 {
            assert_eq!(
                Histogram::bucket_high(index) + 1,
                Histogram::bucket_low(index + 1),
                "gap or overlap after bucket {index}"
            );
        }
        assert_eq!(Histogram::bucket_high(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for index in (SUB_COUNT as usize)..NUM_BUCKETS - 1 {
            let low = Histogram::bucket_low(index) as f64;
            let high = Histogram::bucket_high(index) as f64;
            assert!(
                (high - low) / low <= 1.0 / SUB_COUNT as f64 + 1e-12,
                "bucket {index} wider than 1/{SUB_COUNT}: [{low}, {high}]"
            );
        }
    }

    /// Nearest-rank percentile over a sorted slice: the oracle the histogram
    /// approximates.
    fn oracle(sorted: &[u64], p: f64) -> u64 {
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn percentiles_match_sorted_vec_oracle_on_randomized_samples() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x7e1e_6e7e);
        for round in 0..20 {
            let hist = Histogram::new();
            let n = 100 + (round * 137) % 900;
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                // Mix scales: sub-microsecond ticks through multi-second outliers.
                let v = match rng.gen_range(0u32..4) {
                    0 => rng.gen_range(0u64..16),
                    1 => rng.gen_range(16u64..2_000),
                    2 => rng.gen_range(2_000u64..500_000),
                    _ => rng.gen_range(500_000u64..30_000_000),
                };
                samples.push(v);
                hist.record(v);
            }
            samples.sort_unstable();
            assert_eq!(hist.count(), n as u64);
            assert_eq!(hist.max_us(), *samples.last().unwrap());
            for &p in &[0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let truth = oracle(&samples, p);
                let estimate = hist.percentile(p);
                assert!(
                    estimate >= truth,
                    "round {round} p{p}: estimate {estimate} under-reports {truth}"
                );
                // Upper edge of the bucket containing the true value: within
                // one sub-bucket width (6.25%) + 1 for integer rounding.
                let bound = truth + truth / SUB_COUNT + 1;
                assert!(
                    estimate <= bound,
                    "round {round} p{p}: estimate {estimate} exceeds bound {bound} (truth {truth})"
                );
            }
        }
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let hist = Histogram::new();
        for _ in 0..1000 {
            hist.record(rng.gen_range(0u64..1_000_000));
        }
        let mut last = 0u64;
        for i in 0..=100 {
            let v = hist.percentile(i as f64 / 100.0);
            assert!(v >= last, "percentile not monotone at p={}", i as f64 / 100.0);
            last = v;
        }
        assert_eq!(hist.percentile(1.0), hist.max_us());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for i in 0..500 {
            let v = rng.gen_range(0u64..10_000_000);
            if i % 2 == 0 { a.record(v) } else { b.record(v) }
            combined.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.sum(), combined.sum());
        assert_eq!(a.max_us(), combined.max_us());
        for &p in &[0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.percentile(p), combined.percentile(p));
        }
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let hist = Histogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.percentile(0.99), 0);
        assert_eq!(hist.max_us(), 0);
        assert_eq!(hist.mean_us(), 0.0);
        assert_eq!(hist.count_at_most(u64::MAX), 0);
    }

    #[test]
    fn count_at_most_is_cumulative_and_bounded() {
        let hist = Histogram::new();
        for v in [1u64, 10, 100, 1_000, 10_000, 100_000] {
            hist.record(v);
        }
        assert_eq!(hist.count_at_most(0), 0);
        assert!(hist.count_at_most(150) >= 2); // 1 and 10 certainly counted
        assert_eq!(hist.count_at_most(u64::MAX - 1), 6);
        let mut last = 0;
        for bound in [0u64, 10, 1_000, 100_000, u64::MAX] {
            let c = hist.count_at_most(bound);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let hist = Arc::new(Histogram::new());
        let threads = 4;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let hist = Arc::clone(&hist);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        hist.record(t * 1_000 + i % 997);
                    }
                });
            }
        });
        assert_eq!(hist.count(), threads * per_thread);
    }
}
