//! A bounded, drainable ring buffer for recent events.


// ordering: Relaxed throughout — the eviction counter is advisory telemetry;
// the buffer itself is guarded by its mutex, so no atomic carries ordering.
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A capacity-bounded FIFO retaining the most recent items: pushing onto a
/// full ring evicts the oldest entry. All methods take `&self` (internal
/// mutex), so producers and drainers can share it freely.
#[derive(Debug)]
pub struct RingBuffer<T> {
    capacity: usize,
    inner: Mutex<VecDeque<T>>,
    evicted: AtomicU64,
}

impl<T> RingBuffer<T> {
    /// Creates a ring retaining at most `capacity` items. A capacity of 0
    /// makes every push a no-op.
    pub fn new(capacity: usize) -> Self {
        RingBuffer {
            capacity,
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            evicted: AtomicU64::new(0),
        }
    }

    /// Appends `item`, evicting the oldest entry if the ring is full.
    pub fn push(&self, item: T) {
        if self.capacity == 0 {
            self.evicted.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.len() == self.capacity {
            inner.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        inner.push_back(item);
    }

    /// Removes and returns every retained item, oldest first.
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.drain(..).collect()
    }

    /// Number of items currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retention capacity this ring was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total items evicted (or dropped, for capacity 0) since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }
}

impl<T: Clone> RingBuffer<T> {
    /// A copy of the retained items, oldest first, without draining.
    pub fn snapshot(&self) -> Vec<T> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_most_recent_up_to_capacity() {
        let ring = RingBuffer::new(3);
        for i in 0..7 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.evicted(), 4);
        assert_eq!(ring.snapshot(), vec![4, 5, 6]);
        assert_eq!(ring.drain(), vec![4, 5, 6]);
        assert!(ring.is_empty());
        assert_eq!(ring.evicted(), 4, "drain does not evict");
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let ring = RingBuffer::new(0);
        ring.push(1);
        ring.push(2);
        assert!(ring.is_empty());
        assert_eq!(ring.evicted(), 2);
        assert_eq!(ring.drain(), Vec::<i32>::new());
    }
}
