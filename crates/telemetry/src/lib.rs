//! Std-lib-only observability primitives for the RPQ engine and service.
//!
//! The crate has **zero dependencies** (the workspace is offline; everything
//! external lives under `shims/`) and follows the same hardening rules as
//! `engine`/`service`: no `unsafe`, no panics on untrusted input, and no
//! allocation on the hot recording paths.
//!
//! Four pieces, composable but independent:
//!
//! * [`Histogram`] — lock-free, log-bucketed (HDR-style) latency histogram
//!   over `u64` microsecond values: 16 sub-buckets per power of two
//!   (relative bucket width ≤ 1/16), atomic `record`, bucket-wise
//!   [`Histogram::merge_from`], and [`Histogram::percentile`] /
//!   [`Histogram::max_us`] readouts.
//! * [`TraceContext`] / [`Span`] / [`Phase`] — per-query span tracing: a
//!   trace id (allocated by [`next_trace_id`] at the service boundary or
//!   supplied by the caller) plus a bounded list of phase spans
//!   (parse / cache-lookup / compile / product-BFS / chunk-acquire /
//!   chunk-merge / repair / snapshot-publish), with optional per-worker
//!   attribution ([`WorkerTiming`], [`ParallelBreakdown`]).
//! * [`RingBuffer`] / [`SlowQueryLog`] — bounded, drainable retention for
//!   recent events; the slow-query log keeps the most recent queries over a
//!   (runtime-adjustable) latency threshold.
//! * [`prometheus`] — text exposition (version 0.0.4) rendering helpers for
//!   counters, gauges, and histograms.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod histogram;
pub mod prometheus;
mod ring;
mod slowlog;
mod trace;

pub use histogram::Histogram;
pub use ring::RingBuffer;
pub use slowlog::{SlowQueryEntry, SlowQueryLog};
pub use trace::{
    next_trace_id, ParallelBreakdown, Phase, Span, TraceContext, WorkerTiming, MAX_SPANS_PER_TRACE,
};
