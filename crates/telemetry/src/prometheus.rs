//! Prometheus text exposition (format version 0.0.4) rendering helpers.
//!
//! Pure string builders — no I/O. Metric names must already be valid
//! Prometheus identifiers (`[a-zA-Z_:][a-zA-Z0-9_:]*`); all callers in this
//! workspace use fixed `rpq_*` literals. Duration histograms are rendered in
//! **seconds** (the Prometheus convention) from microsecond-valued
//! [`Histogram`]s.

use crate::Histogram;
use std::fmt::Write as _;

/// Cumulative `le` boundaries for duration histograms, in seconds:
/// 100µs … 5s, then `+Inf`.
pub const DURATION_BOUNDS_S: [f64; 10] = [
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
];

fn render_f64(value: f64) -> String {
    if value == value.trunc() && value.is_finite() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

/// Appends a `# HELP` / `# TYPE counter` header and one sample line.
pub fn render_counter(out: &mut String, name: &str, help: &str, value: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends a `# HELP` / `# TYPE gauge` header and one sample line.
pub fn render_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {}", render_f64(value));
}

/// Appends a gauge header plus one labelled sample per `(label_value, value)`
/// pair, e.g. `name{label="value"} 1.5`.
pub fn render_labelled_gauge(
    out: &mut String,
    name: &str,
    help: &str,
    label: &str,
    samples: &[(String, f64)],
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for (label_value, value) in samples {
        let _ = writeln!(out, "{name}{{{label}=\"{label_value}\"}} {}", render_f64(*value));
    }
}

/// Appends a full histogram family (`_bucket` lines with cumulative `le`
/// labels over [`DURATION_BOUNDS_S`], then `_sum` and `_count`), converting
/// the microsecond-valued histogram to seconds.
pub fn render_duration_histogram(out: &mut String, name: &str, help: &str, hist: &Histogram) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for bound_s in DURATION_BOUNDS_S {
        let bound_us = (bound_s * 1e6) as u64;
        let cumulative = hist.count_at_most(bound_us);
        let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", render_f64(bound_s));
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
    let _ = writeln!(out, "{name}_sum {}", render_f64(hist.sum() as f64 / 1e6));
    let _ = writeln!(out, "{name}_count {}", hist.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal well-formedness check shared with the CI smoke: every
    /// non-empty line is either a `#` comment or `name[{labels}] value`
    /// where value parses as f64.
    fn assert_well_formed(text: &str) {
        assert!(!text.trim().is_empty());
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (_name_part, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("no value on line: {line}"));
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad value on line: {line}"));
        }
    }

    #[test]
    fn counter_and_gauge_render() {
        let mut out = String::new();
        render_counter(&mut out, "rpq_queries_total", "Total queries.", 42);
        render_gauge(&mut out, "rpq_snapshot_age_seconds", "Snapshot age.", 1.5);
        render_labelled_gauge(
            &mut out,
            "rpq_retained_snapshot_age_seconds",
            "Age per retained revision.",
            "revision",
            &[("3".to_string(), 0.25), ("4".to_string(), 0.125)],
        );
        assert_well_formed(&out);
        assert!(out.contains("rpq_queries_total 42\n"));
        assert!(out.contains("rpq_snapshot_age_seconds 1.5\n"));
        assert!(out.contains("rpq_retained_snapshot_age_seconds{revision=\"3\"} 0.25\n"));
        assert!(out.contains("# TYPE rpq_queries_total counter\n"));
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let hist = Histogram::new();
        hist.record(50);        // 50µs  -> first bucket (le 0.0001)
        hist.record(2_000);     // 2ms   -> le 0.005
        hist.record(7_000_000); // 7s    -> only +Inf
        let mut out = String::new();
        render_duration_histogram(&mut out, "rpq_eval_seconds", "Eval latency.", &hist);
        assert_well_formed(&out);
        assert!(out.contains("rpq_eval_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(out.contains("rpq_eval_seconds_count 3\n"));
        // Cumulative: every bound's count is <= the next one.
        let counts: Vec<u64> = out
            .lines()
            .filter(|l| l.contains("_bucket{"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert_eq!(counts.len(), DURATION_BOUNDS_S.len() + 1);
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        // The 2ms sample is certainly counted at the 5ms bound.
        let at_5ms = counts[3];
        assert!(at_5ms >= 2, "50µs and 2ms samples by le=0.005, got {at_5ms}");
    }

    #[test]
    fn integral_floats_render_without_noise() {
        assert_eq!(render_f64(0.0), "0");
        assert_eq!(render_f64(5.0), "5");
        assert_eq!(render_f64(0.5), "0.5");
    }
}
