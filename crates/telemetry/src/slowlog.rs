//! The slow-query log: a bounded ring of recent over-threshold queries.


// ordering: Relaxed throughout — threshold reads and drop counters are
// advisory telemetry; a racing reconfiguration may miss one entry either way.
use crate::ring::RingBuffer;
use std::sync::atomic::{AtomicU64, Ordering};

/// One logged slow query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQueryEntry {
    /// Trace id of the request (0 when the query ran untraced).
    pub trace_id: u64,
    /// The query string as received.
    pub query: String,
    /// End-to-end handling latency in microseconds.
    pub elapsed_us: u64,
    /// Engine revision the query evaluated against.
    pub revision: u64,
}

/// A ring-buffered log of the most recent queries slower than a
/// runtime-adjustable threshold. Observation is cheap for fast queries (one
/// atomic load); only over-threshold queries pay the ring's mutex.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold_us: AtomicU64,
    ring: RingBuffer<SlowQueryEntry>,
    observed: AtomicU64,
}

impl SlowQueryLog {
    /// Creates a log retaining at most `capacity` entries over
    /// `threshold_us` microseconds.
    pub fn new(threshold_us: u64, capacity: usize) -> Self {
        SlowQueryLog {
            threshold_us: AtomicU64::new(threshold_us),
            ring: RingBuffer::new(capacity),
            observed: AtomicU64::new(0),
        }
    }

    /// Current threshold in microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Adjusts the threshold (applies to subsequent observations).
    pub fn set_threshold_us(&self, threshold_us: u64) {
        self.threshold_us.store(threshold_us, Ordering::Relaxed);
    }

    /// Observes one completed query; logs it iff `elapsed_us` meets the
    /// threshold. Returns whether it was logged.
    pub fn observe(&self, trace_id: u64, query: &str, elapsed_us: u64, revision: u64) -> bool {
        if elapsed_us < self.threshold_us() {
            return false;
        }
        self.observed.fetch_add(1, Ordering::Relaxed);
        self.ring.push(SlowQueryEntry {
            trace_id,
            query: query.to_string(),
            elapsed_us,
            revision,
        });
        true
    }

    /// Removes and returns the retained entries, oldest first.
    pub fn drain(&self) -> Vec<SlowQueryEntry> {
        self.ring.drain()
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Retention capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Total over-threshold queries observed since creation (including
    /// entries since evicted or drained).
    pub fn total_observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn threshold_filters_and_capacity_bounds() {
        let log = SlowQueryLog::new(1_000, 2);
        assert!(!log.observe(1, "fast", 999, 0));
        assert!(log.observe(2, "slow-a", 1_000, 0));
        assert!(log.observe(3, "slow-b", 5_000, 1));
        assert!(log.observe(4, "slow-c", 9_000, 2));
        assert_eq!(log.len(), 2);
        assert_eq!(log.total_observed(), 3);
        let entries = log.drain();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].query, "slow-b");
        assert_eq!(entries[1].query, "slow-c");
        assert_eq!(entries[1].trace_id, 4);
        assert_eq!(entries[1].revision, 2);
        assert!(log.is_empty());
    }

    #[test]
    fn threshold_is_runtime_adjustable() {
        let log = SlowQueryLog::new(u64::MAX, 4);
        assert!(!log.observe(1, "q", 1_000_000, 0));
        log.set_threshold_us(0);
        assert!(log.observe(1, "q", 0, 0), "threshold 0 logs everything");
        assert_eq!(log.threshold_us(), 0);
    }

    #[test]
    fn concurrent_observers_and_drainers_stay_bounded() {
        let log = Arc::new(SlowQueryLog::new(0, 16));
        let writers = 4;
        let per_writer = 2_000u64;
        let drained = std::thread::scope(|scope| {
            for w in 0..writers {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..per_writer {
                        log.observe(w * per_writer + i, "q", i, i);
                        if i % 64 == 0 {
                            assert!(log.len() <= log.capacity());
                        }
                    }
                });
            }
            let log = Arc::clone(&log);
            scope
                .spawn(move || {
                    let mut total = 0usize;
                    for _ in 0..200 {
                        total += log.drain().len();
                        std::thread::yield_now();
                    }
                    total
                })
                .join()
                .unwrap()
        });
        let remaining = log.len();
        assert!(remaining <= log.capacity());
        assert_eq!(log.total_observed(), writers * per_writer);
        // Everything observed was either drained, evicted, or still retained.
        assert_eq!(
            drained as u64 + log.drain().len() as u64 + log.ring.evicted(),
            writers * per_writer
        );
    }
}
