//! Per-query span tracing.


// ordering: Relaxed throughout — trace-id allocation only needs uniqueness
// (fetch_add is atomic at any ordering) and drop counters are advisory.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Upper bound on spans retained per trace; recording past it is dropped
/// (and counted) rather than growing without bound.
pub const MAX_SPANS_PER_TRACE: usize = 256;

/// The distinct phases of the engine's query/maintenance pipeline, used as
/// span labels. The taxonomy mirrors the paper's pipeline stages: regex
/// parsing, rewriting/automaton compilation, product-BFS evaluation (with
/// the parallel pool's chunk-acquire/sweep/merge sub-structure), delta
/// repair, and snapshot publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Parsing the query string into a regex AST.
    Parse,
    /// Fingerprinting the query and probing the revision-tagged answer cache.
    CacheLookup,
    /// Compiling the regex into a frozen `DenseNfa` (or compile-cache hit).
    Compile,
    /// The product-BFS sweep over graph × automaton (whole parallel pool).
    ProductBfs,
    /// A worker waiting on / claiming a chunk from the shared cursor
    /// (per-worker detail span).
    ChunkAcquire,
    /// Flattening per-worker pair buffers into the final `Answer`.
    ChunkMerge,
    /// Incremental maintenance: insertion delta sweeps or DRed deletion
    /// repair across registered views.
    Repair,
    /// Building and publishing an immutable engine snapshot.
    SnapshotPublish,
    /// The forward rounds (out of the source) of a bidirectional single-pair
    /// search.
    BidirForward,
    /// The backward rounds (into the target, over `csr_in` + the reversed
    /// automaton) of a bidirectional single-pair search.
    BidirBackward,
    /// Probing materialized extensions and the point-query cache for a
    /// lookup answer before falling back to a fresh search.
    MeetCheck,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 11] = [
        Phase::Parse,
        Phase::CacheLookup,
        Phase::Compile,
        Phase::ProductBfs,
        Phase::ChunkAcquire,
        Phase::ChunkMerge,
        Phase::Repair,
        Phase::SnapshotPublish,
        Phase::BidirForward,
        Phase::BidirBackward,
        Phase::MeetCheck,
    ];

    /// Stable snake_case name used on the wire and in Prometheus labels.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::CacheLookup => "cache_lookup",
            Phase::Compile => "compile",
            Phase::ProductBfs => "product_bfs",
            Phase::ChunkAcquire => "chunk_acquire",
            Phase::ChunkMerge => "chunk_merge",
            Phase::Repair => "repair",
            Phase::SnapshotPublish => "snapshot_publish",
            Phase::BidirForward => "bidir_forward",
            Phase::BidirBackward => "bidir_backward",
            Phase::MeetCheck => "meet_check",
        }
    }
}

/// One recorded phase interval inside a trace.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Which pipeline phase this interval covers.
    pub phase: Phase,
    /// Worker index for per-worker detail spans (`None` for top-level
    /// phases). Top-level spans are non-overlapping; worker spans break the
    /// `ProductBfs` interval down and overlap it by construction.
    pub worker: Option<u32>,
    /// Start offset in microseconds since the trace began.
    pub start_us: u64,
    /// Duration in microseconds.
    pub duration_us: u64,
}

/// A per-query trace: an id, an origin instant, and a bounded span list.
///
/// Recording takes `&self` (a short mutex hold appending to a `Vec`), so a
/// single context can be threaded through the scoped worker pool.
#[derive(Debug)]
pub struct TraceContext {
    trace_id: u64,
    origin: Instant,
    spans: Mutex<Vec<Span>>,
    dropped: AtomicU64,
}

impl TraceContext {
    /// Creates a trace with the given id, starting the clock now.
    pub fn new(trace_id: u64) -> Self {
        TraceContext {
            trace_id,
            origin: Instant::now(),
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// The trace id (allocated at the service boundary or caller-supplied).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The instant the trace began.
    pub fn origin(&self) -> Instant {
        self.origin
    }

    /// Microseconds elapsed since the trace began.
    pub fn total_us(&self) -> u64 {
        self.origin.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Records a top-level span for `phase` that started at `started` and
    /// ends now.
    pub fn record(&self, phase: Phase, started: Instant) {
        let start_us = started
            .saturating_duration_since(self.origin)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        let duration_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.record_span(Span {
            phase,
            worker: None,
            start_us,
            duration_us,
        });
    }

    /// Appends a fully-specified span (bounded by [`MAX_SPANS_PER_TRACE`];
    /// overflow is dropped and counted, never an error).
    pub fn record_span(&self, span: Span) {
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        if spans.len() < MAX_SPANS_PER_TRACE {
            spans.push(span);
        } else {
            drop(spans);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A copy of the recorded spans, in recording order.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Number of spans dropped after the trace filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Sum of top-level (worker-less) span durations, in microseconds.
    /// Top-level spans do not overlap, so this is comparable to
    /// [`TraceContext::total_us`]: their difference is untraced overhead.
    pub fn top_level_sum_us(&self) -> u64 {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|s| s.worker.is_none())
            .map(|s| s.duration_us)
            .sum()
    }
}

/// Global trace-id allocator: ids are unique per process, never 0.
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Accumulated timing and scheduler counters for one worker of the parallel
/// evaluation pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerTiming {
    /// Worker index within the pool.
    pub worker: u32,
    /// Chunks processed by this worker (own deque plus stolen).
    pub chunks: u64,
    /// Of those, chunks stolen from another worker's deque after this
    /// worker's own ran dry.
    pub steals: u64,
    /// Product states popped by this worker's budgeted sweeps (0 for
    /// un-budgeted runs; accurate to the budget check interval).
    pub visited: u64,
    /// Microseconds spent acquiring chunks (deque pops + steal scans).
    pub acquire_us: u64,
    /// Microseconds spent in the product-BFS sweep proper (including the
    /// final sort of this worker's run).
    pub sweep_us: u64,
}

/// Per-worker breakdown of one parallel evaluation: where the wall time of
/// the pool went, worker by worker, plus the final single-threaded merge.
#[derive(Debug, Clone, Default)]
pub struct ParallelBreakdown {
    /// One entry per worker thread.
    pub workers: Vec<WorkerTiming>,
    /// Microseconds flattening per-worker buffers into the `Answer`.
    pub merge_us: u64,
}

impl ParallelBreakdown {
    /// Records this breakdown's per-worker detail spans into `trace`
    /// (`ChunkAcquire` and `ProductBfs` per worker; start offsets are 0 —
    /// these are accumulated durations, not intervals).
    pub fn record_into(&self, trace: &TraceContext) {
        for w in &self.workers {
            trace.record_span(Span {
                phase: Phase::ChunkAcquire,
                worker: Some(w.worker),
                start_us: 0,
                duration_us: w.acquire_us,
            });
            trace.record_span(Span {
                phase: Phase::ProductBfs,
                worker: Some(w.worker),
                start_us: 0,
                duration_us: w.sweep_us,
            });
        }
    }

    /// Total microseconds across workers spent acquiring chunks.
    pub fn total_acquire_us(&self) -> u64 {
        self.workers.iter().map(|w| w.acquire_us).sum()
    }

    /// Total microseconds across workers spent sweeping.
    pub fn total_sweep_us(&self) -> u64 {
        self.workers.iter().map(|w| w.sweep_us).sum()
    }

    /// Total chunks processed across workers.
    pub fn total_chunks(&self) -> u64 {
        self.workers.iter().map(|w| w.chunks).sum()
    }

    /// Total chunks stolen across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total product states popped across workers' budgeted sweeps.
    pub fn total_visited(&self) -> u64 {
        self.workers.iter().map(|w| w.visited).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn phase_names_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for phase in Phase::ALL {
            assert!(seen.insert(phase.as_str()), "duplicate name {}", phase.as_str());
        }
        assert_eq!(seen.len(), Phase::ALL.len());
    }

    #[test]
    fn record_measures_start_offset_and_duration() {
        let trace = TraceContext::new(9);
        assert_eq!(trace.trace_id(), 9);
        let started = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        trace.record(Phase::Compile, started);
        let spans = trace.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].phase, Phase::Compile);
        assert!(spans[0].duration_us >= 2_000, "slept 2ms, got {}us", spans[0].duration_us);
        assert!(trace.total_us() >= spans[0].start_us + spans[0].duration_us);
        assert_eq!(trace.top_level_sum_us(), spans[0].duration_us);
    }

    #[test]
    fn span_capacity_is_bounded_and_overflow_counted() {
        let trace = TraceContext::new(1);
        for _ in 0..MAX_SPANS_PER_TRACE + 10 {
            trace.record_span(Span {
                phase: Phase::ProductBfs,
                worker: Some(0),
                start_us: 0,
                duration_us: 1,
            });
        }
        assert_eq!(trace.spans().len(), MAX_SPANS_PER_TRACE);
        assert_eq!(trace.dropped(), 10);
    }

    #[test]
    fn worker_spans_do_not_count_toward_top_level_sum() {
        let trace = TraceContext::new(1);
        trace.record_span(Span { phase: Phase::ProductBfs, worker: None, start_us: 0, duration_us: 100 });
        trace.record_span(Span { phase: Phase::ProductBfs, worker: Some(1), start_us: 0, duration_us: 70 });
        assert_eq!(trace.top_level_sum_us(), 100);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn breakdown_totals_and_span_recording() {
        let breakdown = ParallelBreakdown {
            workers: vec![
                WorkerTiming {
                    worker: 0,
                    chunks: 3,
                    steals: 1,
                    visited: 400,
                    acquire_us: 5,
                    sweep_us: 100,
                },
                WorkerTiming {
                    worker: 1,
                    chunks: 2,
                    steals: 0,
                    visited: 300,
                    acquire_us: 7,
                    sweep_us: 90,
                },
            ],
            merge_us: 12,
        };
        assert_eq!(breakdown.total_acquire_us(), 12);
        assert_eq!(breakdown.total_sweep_us(), 190);
        assert_eq!(breakdown.total_chunks(), 5);
        assert_eq!(breakdown.total_steals(), 1);
        assert_eq!(breakdown.total_visited(), 700);
        let trace = TraceContext::new(1);
        breakdown.record_into(&trace);
        let spans = trace.spans();
        assert_eq!(spans.len(), 4);
        assert!(spans.iter().all(|s| s.worker.is_some()));
        assert_eq!(trace.top_level_sum_us(), 0);
    }
}
