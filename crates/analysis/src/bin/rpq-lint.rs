//! `rpq-lint` — runs the six workspace invariant rules and prints findings.
//!
//! Usage: `rpq-lint [--root <path>]`.  With no `--root`, walks up from the
//! current directory to the nearest `Cargo.toml` declaring a `[workspace]`.
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("rpq-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: rpq-lint [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rpq-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(root) => root,
        None => {
            eprintln!("rpq-lint: no workspace root found (looked for Cargo.toml with [workspace])");
            return ExitCode::from(2);
        }
    };
    match analysis::run_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("rpq-lint: workspace clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for finding in &findings {
                println!("{finding}");
            }
            println!("rpq-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("rpq-lint: {err}");
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the nearest workspace manifest.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
