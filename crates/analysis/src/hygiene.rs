//! Rule `hygiene`: every non-shim crate root must carry
//! `#![forbid(unsafe_code)]` and `#![deny(missing_docs)]`.
//!
//! The workspace has zero `unsafe` blocks and zero missing docs today;
//! this rule locks both in so neither can sneak into a hot path in a
//! future PR.  Shims are exempt — they mirror external crate APIs and are
//! not part of the engine's contract surface.

use crate::scan::SourceFile;
use crate::workspace::Workspace;
use crate::{push_unless_suppressed, Finding};

const RULE: &str = "hygiene";

/// Runs the rule over every non-shim crate root (`src/lib.rs` or, for a
/// binary-only crate, `src/main.rs`).
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in ws.non_shims() {
        let root = krate
            .sources
            .iter()
            .find(|f| f.path.ends_with("src/lib.rs"))
            .or_else(|| krate.sources.iter().find(|f| f.path.ends_with("src/main.rs")));
        let Some(root) = root else { continue };
        findings.extend(check_file(root, &krate.name));
    }
    findings
}

/// Checks one crate-root file for the two required attributes.
pub fn check_file(file: &SourceFile, krate: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let has = |attr: &str| file.lines.iter().any(|l| l.code.contains(attr));
    if !has("#![forbid(unsafe_code)]") {
        push_unless_suppressed(
            &mut findings,
            file,
            0,
            Finding {
                rule: RULE,
                path: file.path.clone(),
                line: 0,
                message: format!("crate `{krate}` is missing `#![forbid(unsafe_code)]`"),
            },
        );
    }
    if !has("#![deny(missing_docs)]") {
        push_unless_suppressed(
            &mut findings,
            file,
            0,
            Finding {
                rule: RULE,
                path: file.path.clone(),
                line: 0,
                message: format!("crate `{krate}` is missing `#![deny(missing_docs)]`"),
            },
        );
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_attributes_fire() {
        let src = "#![warn(missing_docs)]\npub fn f() {}\n";
        let findings = check_file(&SourceFile::parse("crates/x/src/lib.rs", src), "x");
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn both_present_is_clean() {
        let src = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}\n";
        assert!(check_file(&SourceFile::parse("crates/x/src/lib.rs", src), "x").is_empty());
    }
}
