//! Rule `try-parity`: every panicking public method on `QueryEngine` must
//! have a fallible `try_` twin.
//!
//! "Panicking" is read off the method's own contract: a `# Panics` section
//! in its doc comment.  The rule keeps the serving layer honest — if a
//! mutation or query can panic on bad input, callers holding untrusted
//! input must have a `try_*` spelling that returns `EngineError` instead.

use crate::scan::SourceFile;
use crate::workspace::Workspace;
use crate::{push_unless_suppressed, Finding};
use std::collections::HashSet;

const RULE: &str = "try-parity";

/// Runs the rule over the engine crate's `QueryEngine` impl.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    if let Some(engine) = ws.by_name("engine") {
        for file in &engine.sources {
            if file.path.ends_with("query_engine.rs") {
                findings.extend(check_file(file));
            }
        }
    }
    findings
}

/// Runs the rule over one file containing an `impl QueryEngine` block.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some((start, end, _)) = file.impl_span("impl QueryEngine") else {
        return findings;
    };
    let in_impl = |header: usize| header > start && header <= end;
    let names: HashSet<&str> = file
        .functions
        .iter()
        .filter(|f| in_impl(f.header))
        .map(|f| f.name.as_str())
        .collect();
    for func in &file.functions {
        if !in_impl(func.header) || !func.is_pub || func.in_test {
            continue;
        }
        if func.name.starts_with("try_") || !func.doc.contains("# Panics") {
            continue;
        }
        let twin = format!("try_{}", func.name);
        if !names.contains(twin.as_str()) {
            push_unless_suppressed(
                &mut findings,
                file,
                func.header,
                Finding {
                    rule: RULE,
                    path: file.path.clone(),
                    line: func.header + 1,
                    message: format!(
                        "panicking method `{}` has no fallible twin `{twin}` — \
                         add one so serving code can avoid the panic path",
                        func.name
                    ),
                },
            );
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_twin_fires_present_twin_passes() {
        let src = "\
impl QueryEngine {
    /// Adds an edge.
    ///
    /// # Panics
    /// Panics on unknown labels.
    pub fn add_edge(&mut self) {}

    /// Removes an edge.
    ///
    /// # Panics
    /// Panics on unknown labels.
    pub fn remove_edge(&mut self) {}

    /// Fallible twin.
    pub fn try_remove_edge(&mut self) {}
}
";
        let file = SourceFile::parse("crates/engine/src/query_engine.rs", src);
        let findings = check_file(&file);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("add_edge"));
    }
}
