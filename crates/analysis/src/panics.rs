//! Rule `panic`: no panic sites in service request-handling paths or in
//! engine `try_*` function bodies.
//!
//! Flags `.unwrap()`, `.expect(`, `panic!(`, `unreachable!(`, `todo!(`,
//! `unimplemented!(`, and slice/index expressions (`x[i]`, `x[..n]`) —
//! the indexing operator panics on out-of-range just as surely as
//! `unwrap` does.  `debug_assert!`/`assert!` are deliberately not flagged:
//! assertions on internal invariants are the *documented* panic channel.
//!
//! Scope: every non-test function in `crates/service/src` (excluding
//! `src/bin/`), and every `try_*` function in `crates/engine/src` — the
//! fallible API's whole contract is that it returns errors instead of
//! panicking.  Escape hatch: `// lint: allow(panic) — <why>`.

use crate::scan::SourceFile;
use crate::workspace::Workspace;
use crate::{push_unless_suppressed, Finding};

const RULE: &str = "panic";

/// Named panic tokens searched for in comment-stripped, literal-blanked code.
const TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// Runs the rule over the workspace: all of `service` (minus bins), and
/// the `try_*` surface of `engine`.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in ws.non_shims() {
        match krate.name.as_str() {
            "service" => {
                for file in &krate.sources {
                    if file.path.contains("/bin/") {
                        continue;
                    }
                    findings.extend(check_file(file));
                }
            }
            "engine" => {
                for file in &krate.sources {
                    findings.extend(check_file(file));
                }
            }
            _ => {}
        }
    }
    findings
}

/// Runs the rule over one file.  Scope is derived from the path label:
/// under `crates/engine/` only `try_*` functions are checked; everywhere
/// else every non-test function is in scope (service files and fixtures).
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let engine_scoped = file.path.contains("crates/engine/");
    let mut findings = Vec::new();
    for func in &file.functions {
        if func.in_test {
            continue;
        }
        if engine_scoped && !func.name.starts_with("try_") {
            continue;
        }
        for idx in func.body_start..=func.body_end.min(file.lines.len().saturating_sub(1)) {
            let line = &file.lines[idx];
            if line.in_test {
                continue;
            }
            for token in TOKENS {
                if line.code.contains(token) {
                    push_unless_suppressed(
                        &mut findings,
                        file,
                        idx,
                        Finding {
                            rule: RULE,
                            path: file.path.clone(),
                            line: idx + 1,
                            message: format!(
                                "`{}` in panic-free fn `{}` — return an error instead, \
                                 or justify with `// lint: allow(panic) — <why>`",
                                token.trim_start_matches('.'),
                                func.name
                            ),
                        },
                    );
                }
            }
            if let Some(col) = index_expr(&line.code) {
                push_unless_suppressed(
                    &mut findings,
                    file,
                    idx,
                    Finding {
                        rule: RULE,
                        path: file.path.clone(),
                        line: idx + 1,
                        message: format!(
                            "index expression at column {} in panic-free fn `{}` can panic — \
                             use `.get()`/pattern matching, or justify with \
                             `// lint: allow(panic) — <why>`",
                            col + 1,
                            func.name
                        ),
                    },
                );
            }
        }
    }
    findings
}

/// Finds the first slice/index expression on a code line: a `[` whose
/// preceding non-space character ends a value expression (identifier,
/// `)`, or `]`).  Array literals, types, attributes, and macro brackets
/// (`vec![`) all have non-value predecessors and never match.
fn index_expr(code: &str) -> Option<usize> {
    const KEYWORDS: &[&str] = &[
        "let", "mut", "ref", "in", "if", "while", "match", "return", "break", "else", "move",
    ];
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let Some(prev_at) = chars[..i].iter().rposition(|c| !c.is_whitespace()) else {
            continue;
        };
        let p = chars[prev_at];
        if !(p.is_alphanumeric() || p == '_' || p == ')' || p == ']') {
            continue;
        }
        // `let [a, b] = …` and friends are patterns, not index expressions.
        let mut start = prev_at;
        while start > 0 && (chars[start - 1].is_alphanumeric() || chars[start - 1] == '_') {
            start -= 1;
        }
        let word: String = chars[start..=prev_at].iter().collect();
        if KEYWORDS.contains(&word.as_str()) {
            continue;
        }
        return Some(i);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_heuristic() {
        assert!(index_expr("let x = arr[i];").is_some());
        assert!(index_expr("let y = f()[0];").is_some());
        assert!(index_expr("let a = [0u8; 4];").is_none());
        assert!(index_expr("#[derive(Debug)]").is_none());
        assert!(index_expr("let v = vec![1, 2];").is_none());
        assert!(index_expr("let [a, b] = pair;").is_none());
        assert!(index_expr("fn f(x: &[u8]) {").is_none());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn handle() {\n    let x = y.unwrap_or_else(|| 0);\n}\n";
        let file = SourceFile::parse("crates/service/src/x.rs", src);
        assert!(check_file(&file).is_empty());
    }
}
