//! A lightweight Rust token scanner: the shared substrate of every source
//! rule.
//!
//! This is deliberately **not** a parser.  It walks a file once with a small
//! character-level state machine that separates *code* from *comments* and
//! blanks out string/char literal contents, tracks brace depth, and records
//! function spans (name, visibility, accumulated doc comment, body lines)
//! and `#[cfg(test)]` module spans.  Everything a rule needs downstream is a
//! substring question over the classified lines — precise enough for the
//! project's own codebase and fixtures, honest about being an
//! approximation (see ARCHITECTURE.md for the known false-negative shapes).

/// One source line, classified.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code with comments removed and string/char literal
    /// *contents* blanked (the delimiting quotes survive).  Substring
    /// checks against this never match text inside literals or comments.
    pub code: String,
    /// The line's comment text (line comments and any block-comment part),
    /// markers included — `"// note"`, `"/// doc"`, `"//! ordering: …"`.
    pub comment: String,
    /// Brace depth at the *start* of the line (code braces only).
    pub depth_start: usize,
    /// Whether the line falls inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

/// One `fn` item: its span and the metadata rules key off.
#[derive(Debug, Clone)]
pub struct Function {
    /// The function's name.
    pub name: String,
    /// Whether the header line carries `pub`.
    pub is_pub: bool,
    /// 0-based line index of the `fn` keyword.
    pub header: usize,
    /// 0-based line index of the first body line (the line the `{` opens
    /// on).
    pub body_start: usize,
    /// 0-based line index of the closing `}` of the body.
    pub body_end: usize,
    /// Brace depth *inside* the body (one more than at the header).
    pub body_depth: usize,
    /// Accumulated `///` doc comment directly above the header.
    pub doc: String,
    /// Whether the function sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

/// A scanned source file: classified lines plus the function index.
#[derive(Debug)]
pub struct SourceFile {
    /// Display path used in findings (workspace-relative).
    pub path: String,
    /// The classified lines.
    pub lines: Vec<Line>,
    /// Every `fn` item found, in source order.
    pub functions: Vec<Function>,
}

/// Character-level scan state carried across lines.
enum State {
    Code,
    BlockComment(usize),
    Str,
    RawStr(usize),
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl SourceFile {
    /// Scans `text`, classifying each line and indexing functions and
    /// `#[cfg(test)]` modules.  `path` is only used for display.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let mut lines = Vec::new();
        let mut state = State::Code;
        let mut depth = 0usize;
        for raw in text.lines() {
            let (line, next_state, next_depth) = classify_line(raw, state, depth);
            state = next_state;
            depth = next_depth;
            lines.push(line);
        }
        mark_test_modules(&mut lines);
        let functions = index_functions(&lines);
        SourceFile { path: path.to_string(), lines, functions }
    }

    /// The body span (first line, last line, inner depth) of the first
    /// `impl` block whose header contains `needle` (e.g. `"impl QueryEngine"`),
    /// or `None` when the file has no such block.
    pub fn impl_span(&self, needle: &str) -> Option<(usize, usize, usize)> {
        let header = self.lines.iter().position(|l| l.code.contains(needle))?;
        let open_depth = self.lines[header].depth_start;
        let mut end = header;
        for (idx, line) in self.lines.iter().enumerate().skip(header + 1) {
            end = idx;
            if line.depth_start == open_depth + 1 && line.code.trim_start().starts_with('}') {
                break;
            }
        }
        Some((header, end, open_depth + 1))
    }
}

/// Classifies one raw line given the carried-over state, returning the
/// classified line, the state after the line, and the brace depth after it.
fn classify_line(raw: &str, mut state: State, depth_at_start: usize) -> (Line, State, usize) {
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut depth = depth_at_start;
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match state {
            State::BlockComment(nest) => {
                comment.push(c);
                if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                    comment.push('*');
                    state = State::BlockComment(nest + 1);
                    i += 2;
                    continue;
                }
                if c == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                    comment.push('/');
                    state = if nest == 1 { State::Code } else { State::BlockComment(nest - 1) };
                    i += 2;
                    continue;
                }
                i += 1;
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // the escaped char never terminates the literal
                    continue;
                }
                if c == '"' {
                    code.push('"');
                    state = State::Code;
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let closing: String = chars[i + 1..].iter().take(hashes).collect();
                    if closing.chars().filter(|&h| h == '#').count() == hashes {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        state = State::Code;
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
            }
            State::Code => {
                match c {
                    '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                        comment.push_str(&raw[raw.char_indices().nth(i).map(|(b, _)| b).unwrap_or(0)..]);
                        i = chars.len();
                    }
                    '/' if i + 1 < chars.len() && chars[i + 1] == '*' => {
                        comment.push_str("/*");
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    '"' => {
                        // Raw-string openings (`r"…"`, `r#"…"#`, `br#"…"#`)
                        // were consumed by the `r`/`#` lookahead below; a
                        // bare quote starts a plain string.
                        code.push('"');
                        state = State::Str;
                        i += 1;
                    }
                    'r' | 'b'
                        if looks_like_raw_string(&chars, i) =>
                    {
                        // Consume the prefix + hashes + opening quote.
                        let mut j = i;
                        while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') {
                            code.push(chars[j]);
                            j += 1;
                        }
                        let mut hashes = 0;
                        while j < chars.len() && chars[j] == '#' {
                            code.push('#');
                            hashes += 1;
                            j += 1;
                        }
                        if j < chars.len() && chars[j] == '"' {
                            code.push('"');
                            state = if hashes == 0 { State::Str } else { State::RawStr(hashes) };
                            i = j + 1;
                        } else {
                            // Not actually a raw string (`b` as an ident…).
                            i += 1;
                        }
                    }
                    '\'' => {
                        // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                        let next = chars.get(i + 1).copied();
                        let after = chars.get(i + 2).copied();
                        let is_lifetime = matches!(next, Some(n) if (n.is_alphabetic() || n == '_'))
                            && after != Some('\'');
                        if is_lifetime {
                            code.push('\'');
                            i += 1;
                        } else if next == Some('\\') {
                            // Escaped char literal: skip to the closing quote.
                            code.push_str("'\\'");
                            let mut j = i + 2;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            i = j + 1;
                        } else {
                            code.push_str("''");
                            i += 3; // 'x'
                        }
                    }
                    '{' => {
                        depth += 1;
                        code.push(c);
                        i += 1;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        code.push(c);
                        i += 1;
                    }
                    _ => {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
    }
    let line = Line { code, comment, depth_start: depth_at_start, in_test: false };
    (line, state, depth)
}

/// Whether position `i` (an `r` or `b`) opens a raw/byte string literal.
fn looks_like_raw_string(chars: &[char], i: usize) -> bool {
    // Must not be the tail of an identifier (`for`, `expr`…).
    if i > 0 && is_ident(chars[i - 1]) {
        return false;
    }
    let mut j = i;
    let mut saw_r = false;
    while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') {
        saw_r |= chars[j] == 'r';
        j += 1;
    }
    let hash_start = j;
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    // Hashes are only legal with an `r` prefix (`r#"`, `br#"`); a plain
    // `b"…"` byte string (no r, no hashes) still needs consuming so the `b`
    // is not mistaken for an identifier char before the quote.
    if j > hash_start && !saw_r {
        return false;
    }
    j < chars.len() && chars[j] == '"'
}

/// Marks every line inside a `#[cfg(test)] mod … { }` span.
fn mark_test_modules(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Find the following `mod` item (attributes may intervene).
            let mut j = i + 1;
            while j < lines.len()
                && !lines[j].code.contains("mod ")
                && (lines[j].code.trim().is_empty() || lines[j].code.trim_start().starts_with("#["))
            {
                j += 1;
            }
            if j < lines.len() && lines[j].code.contains("mod ") {
                let open_depth = lines[j].depth_start;
                let mut k = j;
                loop {
                    lines[k].in_test = true;
                    k += 1;
                    if k >= lines.len() {
                        break;
                    }
                    if lines[k].depth_start == open_depth + 1
                        && lines[k].code.trim_start().starts_with('}')
                    {
                        lines[k].in_test = true;
                        break;
                    }
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
}

/// Finds every `fn` item and its body span.
fn index_functions(lines: &[Line]) -> Vec<Function> {
    let mut functions = Vec::new();
    let mut doc = String::new();
    for (idx, line) in lines.iter().enumerate() {
        let trimmed_comment = line.comment.trim_start();
        if line.code.trim().is_empty() {
            if trimmed_comment.starts_with("///") || trimmed_comment.starts_with("#[") {
                doc.push_str(trimmed_comment);
                doc.push('\n');
                continue;
            }
            if trimmed_comment.is_empty() {
                doc.clear();
            }
            continue;
        }
        // Attribute-only lines keep the doc run alive.
        if line.code.trim_start().starts_with("#[") {
            continue;
        }
        if let Some(name) = fn_name(&line.code) {
            let is_pub = fn_is_pub(&line.code);
            // Find the opening brace (same line or a continuation line);
            // a `;` first means a bodyless trait method — skip it.
            let mut body_start = None;
            'search: for (j, cand) in lines.iter().enumerate().skip(idx).take(16) {
                for c in cand.code.chars() {
                    match c {
                        '{' => {
                            body_start = Some(j);
                            break 'search;
                        }
                        ';' => break 'search,
                        _ => {}
                    }
                }
            }
            if let Some(body_start) = body_start {
                let open_depth = lines[body_start]
                    .depth_start
                    .max(line.depth_start);
                let mut body_end = body_start;
                for (k, cand) in lines.iter().enumerate().skip(body_start + 1) {
                    if cand.depth_start <= open_depth {
                        break;
                    }
                    body_end = k;
                }
                functions.push(Function {
                    name,
                    is_pub,
                    header: idx,
                    body_start,
                    body_end,
                    body_depth: open_depth + 1,
                    doc: std::mem::take(&mut doc),
                    in_test: line.in_test,
                });
            } else {
                doc.clear();
            }
        } else {
            doc.clear();
        }
    }
    functions
}

/// Extracts the function name from a header line, if the line declares one.
fn fn_name(code: &str) -> Option<String> {
    let bytes: Vec<char> = code.chars().collect();
    let mut i = 0;
    while i + 2 < bytes.len() {
        if bytes[i] == 'f'
            && bytes[i + 1] == 'n'
            && bytes.get(i + 2).is_some_and(|c| c.is_whitespace())
            && (i == 0 || !is_ident(bytes[i - 1]))
        {
            let mut j = i + 3;
            while j < bytes.len() && bytes[j].is_whitespace() {
                j += 1;
            }
            let start = j;
            while j < bytes.len() && is_ident(bytes[j]) {
                j += 1;
            }
            if j > start {
                return Some(bytes[start..j].iter().collect());
            }
            return None;
        }
        i += 1;
    }
    None
}

/// Whether a `fn` header line is `pub` (any visibility flavor).
fn fn_is_pub(code: &str) -> bool {
    match code.find("fn ") {
        Some(at) => code[..at].contains("pub"),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_separated() {
        let src = r#"
fn f() {
    let s = "a // not a comment { }";
    // real comment
    let c = 'x';
}
"#;
        let file = SourceFile::parse("t.rs", src);
        assert!(file.lines[2].code.contains("let s ="));
        assert!(!file.lines[2].code.contains("not a comment"));
        assert!(file.lines[3].comment.contains("real comment"));
        assert_eq!(file.functions.len(), 1);
        assert_eq!(file.functions[0].name, "f");
    }

    #[test]
    fn raw_strings_and_lifetimes_do_not_derail_the_scan() {
        let src = "fn g<'a>(x: &'a str) -> bool {\n    let r = r#\"quote \" inside\"#;\n    x.is_empty()\n}\n";
        let file = SourceFile::parse("t.rs", src);
        assert_eq!(file.functions.len(), 1);
        assert!(!file.lines[1].code.contains("inside"));
        assert_eq!(file.functions[0].body_end, 3);
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let file = SourceFile::parse("t.rs", src);
        assert!(!file.lines[0].in_test);
        assert!(file.lines[3].in_test);
        let helper = file.functions.iter().find(|f| f.name == "helper").unwrap();
        assert!(helper.in_test);
        assert!(!file.functions.iter().find(|f| f.name == "live").unwrap().in_test);
    }

    #[test]
    fn docs_accumulate_onto_the_next_function() {
        let src = "/// Panics galore.\n/// # Panics\n/// Always.\npub fn boom() {\n    panic!()\n}\n";
        let file = SourceFile::parse("t.rs", src);
        let f = &file.functions[0];
        assert!(f.is_pub);
        assert!(f.doc.contains("# Panics"));
    }
}
