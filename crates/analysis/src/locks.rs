//! Rule `lock-order`: the lock acquisition graph must be acyclic, and no
//! guard may be held across a blocking channel send or socket I/O call.
//!
//! The analysis is a per-crate approximation:
//!
//! - An acquisition is a `.read()`, `.write()`, or `.lock()` call (exact
//!   empty-paren spelling, so `io::Write::write(buf)` never matches).
//!   The lock's identity is `file-stem::receiver-field` — good enough to
//!   tell `server::snapshot` from `server::writer` without type info.
//! - A `let`-bound guard (chain ending in `?`, `.unwrap()`, `.expect(…)`,
//!   `.unwrap_or_else(…)`, or `.map_err(…)?`) is live until its enclosing
//!   block closes or an explicit `drop(name)`.  An acquisition chained
//!   into a longer expression is a statement-temporary, live for that
//!   line only.
//! - While a guard is live, every new acquisition adds an order edge
//!   `held → new`; one level of intra-crate call inlining adds edges for
//!   locks acquired anywhere in a directly-called function's body.
//! - Cycles in the edge graph are reported as potential deadlocks;
//!   blocking ops (`.send(`, `.recv(`, `.write_all(`, `.flush(`,
//!   `.read_line(`, `.fill_buf(`, `.accept(`) with a guard live are
//!   reported directly.
//!
//! Known false negatives (documented in ARCHITECTURE.md): multi-line
//! acquisition chains register as temporaries, guards returned from
//! helper functions are invisible, and inlining is one level deep.

use crate::scan::SourceFile;
use crate::workspace::Workspace;
use crate::{push_unless_suppressed, Finding};
use std::collections::{HashMap, HashSet};

const RULE: &str = "lock-order";

const ACQUIRE: &[&str] = &[".read()", ".write()", ".lock()"];
const BLOCKING: &[&str] = &[
    ".send(",
    ".recv(",
    ".write_all(",
    ".read_line(",
    ".fill_buf(",
    ".flush(",
    ".accept(",
];

/// A lock-order edge `from → to`, anchored at the acquisition site of `to`.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: usize,
    line: usize,
}

/// Runs the rule over every non-shim crate independently.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in ws.non_shims() {
        findings.extend(check_crate(&krate.sources));
    }
    findings
}

/// Runs the rule over one crate's files (fixtures pass a single file).
pub fn check_crate(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Pass 1: every function's acquired lock set, for call inlining.
    let mut fn_locks: HashMap<String, Vec<String>> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        let stem = file_stem(&file.path);
        for func in &file.functions {
            if func.in_test {
                continue;
            }
            let mut locks = Vec::new();
            for idx in func.body_start..=func.body_end.min(file.lines.len() - 1) {
                for acq in acquisitions(&files[fi].lines[idx].code, stem) {
                    if !locks.contains(&acq) {
                        locks.push(acq);
                    }
                }
            }
            if !locks.is_empty() {
                fn_locks.entry(func.name.clone()).or_default().extend(locks);
            }
        }
    }
    // Pass 2: simulate guard liveness per function, collecting edges and
    // direct findings.
    let mut edges: Vec<Edge> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        let stem = file_stem(&file.path);
        for func in &file.functions {
            if func.in_test {
                continue;
            }
            simulate(
                file, fi, stem, func, &fn_locks, &mut edges, &mut findings,
            );
        }
    }
    // Cycle detection over the collected edges.
    findings.extend(cycles(&edges, files));
    findings
}

/// A live guard inside the liveness simulation.
struct Guard {
    id: String,
    name: Option<String>,
    depth: usize,
}

#[allow(clippy::too_many_arguments)]
fn simulate(
    file: &SourceFile,
    fi: usize,
    stem: &str,
    func: &crate::scan::Function,
    fn_locks: &HashMap<String, Vec<String>>,
    edges: &mut Vec<Edge>,
    findings: &mut Vec<Finding>,
) {
    let mut live: Vec<Guard> = Vec::new();
    let end = func.body_end.min(file.lines.len() - 1);
    for idx in func.body_start..=end {
        let line = &file.lines[idx];
        let code = line.code.as_str();
        // Expire guards whose enclosing block has closed.
        live.retain(|g| line.depth_start >= g.depth);
        if code.trim_start().starts_with('}') {
            live.retain(|g| g.depth < line.depth_start);
        }
        // Explicit drops.
        for name in drop_targets(code) {
            live.retain(|g| g.name.as_deref() != Some(name.as_str()));
        }
        // New acquisitions on this line.
        let acquired = acquisitions(code, stem);
        let bound = let_bound_guard(code);
        let mut line_temps: Vec<String> = Vec::new();
        for id in &acquired {
            for held in live.iter().map(|g| &g.id).chain(line_temps.iter()) {
                if held == id {
                    push_unless_suppressed(
                        findings,
                        file,
                        idx,
                        Finding {
                            rule: RULE,
                            path: file.path.clone(),
                            line: idx + 1,
                            message: format!(
                                "`{id}` re-acquired in `{}` while already held — \
                                 self-deadlock on a non-reentrant lock",
                                func.name
                            ),
                        },
                    );
                } else {
                    edges.push(Edge {
                        from: held.clone(),
                        to: id.clone(),
                        file: fi,
                        line: idx,
                    });
                }
            }
            match &bound {
                Some(name) if acquired.len() == 1 => live.push(Guard {
                    id: id.clone(),
                    name: Some(name.clone()),
                    depth: line.depth_start.max(func.body_depth),
                }),
                _ => line_temps.push(id.clone()),
            }
        }
        // One-level call inlining: a call made with guards live orders the
        // held locks before everything the callee acquires.
        if !live.is_empty() || !line_temps.is_empty() {
            for callee in call_targets(code, &func.name) {
                if let Some(callee_locks) = fn_locks.get(&callee) {
                    for to in callee_locks {
                        for held in live.iter().map(|g| &g.id).chain(line_temps.iter()) {
                            if held == to {
                                push_unless_suppressed(
                                    findings,
                                    file,
                                    idx,
                                    Finding {
                                        rule: RULE,
                                        path: file.path.clone(),
                                        line: idx + 1,
                                        message: format!(
                                            "`{}` called from `{}` while `{held}` is held — \
                                             the callee re-acquires the same lock",
                                            callee, func.name
                                        ),
                                    },
                                );
                            } else {
                                edges.push(Edge {
                                    from: held.clone(),
                                    to: to.clone(),
                                    file: fi,
                                    line: idx,
                                });
                            }
                        }
                    }
                }
            }
            // Blocking ops with a guard live (or a same-line temporary).
            for op in BLOCKING {
                if code.contains(op) {
                    let held: Vec<&String> =
                        live.iter().map(|g| &g.id).chain(line_temps.iter()).collect();
                    if let Some(first) = held.first() {
                        push_unless_suppressed(
                            findings,
                            file,
                            idx,
                            Finding {
                                rule: RULE,
                                path: file.path.clone(),
                                line: idx + 1,
                                message: format!(
                                    "blocking `{op}…)` in `{}` while holding `{first}` — \
                                     release the guard before channel/socket I/O",
                                    func.name
                                ),
                            },
                        );
                    }
                }
            }
        }
    }
}

/// Every lock id acquired on a code line.
fn acquisitions(code: &str, stem: &str) -> Vec<String> {
    let mut out = Vec::new();
    for token in ACQUIRE {
        let mut from = 0;
        while let Some(at) = code[from..].find(token) {
            let at = from + at;
            out.push(format!("{stem}::{}", receiver(code, at)));
            from = at + token.len();
        }
    }
    out
}

/// The receiver field identifier immediately before the acquisition dot at
/// byte offset `dot` (e.g. `self.shared.snapshot` → `snapshot`).  A call
/// result receiver (`cache().lock()`) resolves to the call's name.
fn receiver(code: &str, dot: usize) -> String {
    let bytes = code.as_bytes();
    let mut i = dot;
    // Skip a balanced `(…)` group backwards (receiver is a call result).
    if i > 0 && bytes[i - 1] == b')' {
        let mut depth = 0usize;
        while i > 0 {
            i -= 1;
            match bytes[i] {
                b')' => depth += 1,
                b'(' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let end = i;
    while i > 0 {
        let c = bytes[i - 1] as char;
        if c.is_alphanumeric() || c == '_' {
            i -= 1;
        } else {
            break;
        }
    }
    if i == end {
        "<expr>".to_string()
    } else {
        code[i..end].to_string()
    }
}

/// If the line is `let [mut] name = <acquisition chain>;` where the chain
/// after the lock call only unwraps/propagates (never transforms the
/// guard), returns the binding name.
fn let_bound_guard(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    if name.is_empty() {
        return None;
    }
    // Locate the last acquisition token and validate the trailing chain.
    let tail_at = ACQUIRE
        .iter()
        .filter_map(|t| code.rfind(t).map(|at| at + t.len()))
        .max()?;
    chain_preserves_guard(&code[tail_at..]).then_some(name)
}

/// Whether a post-acquisition chain keeps returning the guard: any mix of
/// `?` and `.unwrap() / .expect(…) / .unwrap_or_else(…) / .map_err(…)`
/// calls, ending the statement.
fn chain_preserves_guard(mut rest: &str) -> bool {
    const KEEPERS: &[&str] = &["unwrap", "expect", "unwrap_or_else", "map_err"];
    loop {
        rest = rest.trim_start();
        if rest.is_empty() || rest == ";" {
            return true;
        }
        if let Some(r) = rest.strip_prefix('?') {
            rest = r;
            continue;
        }
        let Some(r) = rest.strip_prefix('.') else { return false };
        let ident: String = r.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if !KEEPERS.contains(&ident.as_str()) {
            return false;
        }
        let after = &r[ident.len()..];
        let Some(close) = matching_paren(after) else { return false };
        rest = &after[close + 1..];
    }
}

/// Byte offset of the `)` closing the `(` that `s` must start with.
fn matching_paren(s: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ if i == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Binding names passed to `drop(...)` on this line.
fn drop_targets(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = code[from..].find("drop(") {
        let at = from + at;
        let before_ok = at == 0
            || !code.as_bytes()[at - 1].is_ascii_alphanumeric() && code.as_bytes()[at - 1] != b'_';
        if before_ok {
            let arg: String = code[at + 5..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !arg.is_empty() {
                out.push(arg);
            }
        }
        from = at + 5;
    }
    out
}

/// Function names invoked on this line, excluding the enclosing function
/// itself and `drop`.  Method calls are inlined only through `self` —
/// a dotted call on a local (`map.get(…)`) usually operates on an
/// already-acquired guard, and treating it as a call into the same-named
/// lock-taking method would manufacture re-acquire false positives.
fn call_targets(code: &str, this_fn: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '(' {
            let mut j = i;
            while j > 0 && (chars[j - 1].is_alphanumeric() || chars[j - 1] == '_') {
                j -= 1;
            }
            if j < i {
                if j >= 1 && chars[j - 1] == '.' {
                    let mut k = j - 1;
                    while k > 0 && (chars[k - 1].is_alphanumeric() || chars[k - 1] == '_') {
                        k -= 1;
                    }
                    let receiver: String = chars[k..j - 1].iter().collect();
                    if receiver != "self" {
                        i += 1;
                        continue;
                    }
                }
                let name: String = chars[j..i].iter().collect();
                if name != this_fn
                    && name != "drop"
                    && !name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                    && !out.contains(&name)
                {
                    out.push(name);
                }
            }
        }
        i += 1;
    }
    out
}

/// Finds cycles in the edge graph, reporting each once (anchored at the
/// lexicographically-first edge site so a suppression there silences it).
fn cycles(edges: &[Edge], files: &[SourceFile]) -> Vec<Finding> {
    let mut graph: HashMap<&str, Vec<&Edge>> = HashMap::new();
    for e in edges {
        graph.entry(e.from.as_str()).or_default().push(e);
    }
    let mut findings = Vec::new();
    let mut reported: HashSet<String> = HashSet::new();
    let mut nodes: Vec<&&str> = graph.keys().collect();
    nodes.sort();
    for &start in nodes {
        let mut path: Vec<&Edge> = Vec::new();
        let mut on_path: HashSet<&str> = HashSet::new();
        dfs(start, &graph, &mut path, &mut on_path, &mut reported, files, &mut findings);
    }
    findings
}

#[allow(clippy::too_many_arguments)]
fn dfs<'a>(
    node: &'a str,
    graph: &HashMap<&'a str, Vec<&'a Edge>>,
    path: &mut Vec<&'a Edge>,
    on_path: &mut HashSet<&'a str>,
    reported: &mut HashSet<String>,
    files: &[SourceFile],
    findings: &mut Vec<Finding>,
) {
    if !on_path.insert(node) {
        return;
    }
    if let Some(out) = graph.get(node) {
        for edge in out {
            if on_path.contains(edge.to.as_str()) {
                // Found a cycle: the path suffix from `to` plus this edge.
                let from = path
                    .iter()
                    .position(|e| e.from == edge.to)
                    .unwrap_or(path.len());
                let mut cycle: Vec<&Edge> = path[from..].to_vec();
                cycle.push(edge);
                let mut names: Vec<&str> = cycle.iter().map(|e| e.from.as_str()).collect();
                names.push(&edge.to);
                // Canonical key: rotate to the smallest node name.
                let mut key_nodes: Vec<&str> = cycle.iter().map(|e| e.from.as_str()).collect();
                key_nodes.sort_unstable();
                let key = key_nodes.join("|");
                if reported.insert(key) {
                    let anchor = cycle
                        .iter()
                        .min_by_key(|e| (&files[e.file].path, e.line))
                        .map(|e| (e.file, e.line));
                    if let Some((fi, line)) = anchor {
                        let sites: Vec<String> = cycle
                            .iter()
                            .map(|e| {
                                format!("{} → {} at {}:{}", e.from, e.to, files[e.file].path, e.line + 1)
                            })
                            .collect();
                        push_unless_suppressed(
                            findings,
                            &files[fi],
                            line,
                            Finding {
                                rule: RULE,
                                path: files[fi].path.clone(),
                                line: line + 1,
                                message: format!(
                                    "lock acquisition cycle {} ({})",
                                    names.join(" → "),
                                    sites.join("; ")
                                ),
                            },
                        );
                    }
                }
            } else {
                path.push(edge);
                dfs(edge.to.as_str(), graph, path, on_path, reported, files, findings);
                path.pop();
            }
        }
    }
    on_path.remove(node);
}

/// `crates/service/src/server.rs` → `server`.
fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn let_bound_vs_temporary() {
        assert_eq!(
            let_bound_guard("    let guard = self.map.write().unwrap();"),
            Some("guard".to_string())
        );
        assert_eq!(
            let_bound_guard("    let mut g = self.map.write().expect(\"poisoned\");"),
            Some("g".to_string())
        );
        assert_eq!(
            let_bound_guard(
                "    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);"
            ),
            Some("g".to_string())
        );
        // `.clone()` after the acquisition means the guard is a temporary.
        assert_eq!(let_bound_guard("    let s = self.snap.read().unwrap().clone();"), None);
        assert_eq!(let_bound_guard("    self.map.write().unwrap().insert(k, v);"), None);
    }

    #[test]
    fn inverted_order_is_a_cycle() {
        let src = "\
fn a(&self) {
    let g1 = self.alpha.lock().unwrap();
    let g2 = self.beta.lock().unwrap();
    drop(g2);
    drop(g1);
}
fn b(&self) {
    let g2 = self.beta.lock().unwrap();
    let g1 = self.alpha.lock().unwrap();
    drop(g1);
    drop(g2);
}
";
        let file = SourceFile::parse("x.rs", src);
        let findings = check_crate(std::slice::from_ref(&file));
        assert!(
            findings.iter().any(|f| f.message.contains("cycle")),
            "expected a cycle finding, got: {findings:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "\
fn a(&self) {
    let g1 = self.alpha.lock().unwrap();
    let g2 = self.beta.lock().unwrap();
    drop(g2);
    drop(g1);
}
fn b(&self) {
    let g1 = self.alpha.lock().unwrap();
    let g2 = self.beta.lock().unwrap();
    drop(g2);
    drop(g1);
}
";
        let file = SourceFile::parse("x.rs", src);
        assert!(check_crate(std::slice::from_ref(&file)).is_empty());
    }

    #[test]
    fn send_under_guard_is_flagged() {
        let src = "\
fn a(&self) {
    let g = self.state.lock().unwrap();
    self.tx.send(1).ok();
}
";
        let file = SourceFile::parse("x.rs", src);
        let findings = check_crate(std::slice::from_ref(&file));
        assert!(findings.iter().any(|f| f.message.contains("blocking")));
    }
}
