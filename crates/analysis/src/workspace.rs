//! Workspace discovery: manifests, crate metadata, and scanned sources.

use crate::scan::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// A parsed (subset of a) `Cargo.toml`.
#[derive(Debug, Default)]
pub struct Manifest {
    /// The `[package] name` value.
    pub name: String,
    /// Dependency crate names from `[dependencies]`.
    pub dependencies: Vec<String>,
    /// Dependency crate names from `[dev-dependencies]`.
    pub dev_dependencies: Vec<String>,
}

/// One workspace member: its manifest plus every scanned `src/` file.
#[derive(Debug)]
pub struct CrateInfo {
    /// Crate name from the manifest.
    pub name: String,
    /// Crate root directory, workspace-relative (`crates/engine`, `shims/rand`, `.`).
    pub rel_path: String,
    /// Whether the crate lives under `shims/`.
    pub is_shim: bool,
    /// The parsed manifest.
    pub manifest: Manifest,
    /// Scanned `src/**/*.rs` files (lib + bins), path-labelled relative to
    /// the workspace root.  Empty for shims — shims are layering-only.
    pub sources: Vec<SourceFile>,
}

/// The whole workspace, ready for the rules to walk.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Every member crate (non-shims carry sources; shims are manifest-only).
    pub crates: Vec<CrateInfo>,
}

impl Workspace {
    /// Loads the workspace rooted at `root`: the root package plus every
    /// `crates/*` and `shims/*` member with a `Cargo.toml`.
    pub fn load(root: &Path) -> Result<Workspace, String> {
        let mut crates = Vec::new();
        // Root package (`rewriting-rpq`) first.
        let root_manifest = root.join("Cargo.toml");
        if root_manifest.is_file() {
            let manifest = parse_manifest(&read(&root_manifest)?);
            if !manifest.name.is_empty() {
                let sources = scan_sources(root, &root.join("src"))?;
                crates.push(CrateInfo {
                    name: manifest.name.clone(),
                    rel_path: ".".to_string(),
                    is_shim: false,
                    manifest,
                    sources,
                });
            }
        }
        for (dir, is_shim) in [("crates", false), ("shims", true)] {
            let base = root.join(dir);
            if !base.is_dir() {
                continue;
            }
            let mut entries: Vec<PathBuf> = fs::read_dir(&base)
                .map_err(|e| format!("read {}: {e}", base.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect();
            entries.sort();
            for crate_dir in entries {
                let manifest = parse_manifest(&read(&crate_dir.join("Cargo.toml"))?);
                let sources = if is_shim {
                    Vec::new()
                } else {
                    scan_sources(root, &crate_dir.join("src"))?
                };
                let rel = crate_dir
                    .strip_prefix(root)
                    .unwrap_or(&crate_dir)
                    .to_string_lossy()
                    .into_owned();
                crates.push(CrateInfo {
                    name: manifest.name.clone(),
                    rel_path: rel,
                    is_shim,
                    manifest,
                    sources,
                });
            }
        }
        Ok(Workspace { root: root.to_path_buf(), crates }.canonical())
    }

    fn canonical(mut self) -> Workspace {
        self.crates.sort_by(|a, b| a.name.cmp(&b.name));
        self
    }

    /// Non-shim crates only.
    pub fn non_shims(&self) -> impl Iterator<Item = &CrateInfo> {
        self.crates.iter().filter(|c| !c.is_shim)
    }

    /// Looks a crate up by name.
    pub fn by_name(&self, name: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.name == name)
    }
}

impl Workspace {
    /// Builds a workspace from pre-scanned parts (used by fixture tests).
    pub fn from_parts(crates: Vec<CrateInfo>) -> Workspace {
        Workspace { root: PathBuf::from("."), crates }
    }
}

fn read(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))
}

/// Recursively scans `src_dir` for `.rs` files, labelling each with its
/// workspace-relative path.
fn scan_sources(root: &Path, src_dir: &Path) -> Result<Vec<SourceFile>, String> {
    let mut files = Vec::new();
    if !src_dir.is_dir() {
        return Ok(files);
    }
    let mut stack = vec![src_dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
            .map_err(|e| format!("read {}: {e}", dir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            if entry.is_dir() {
                stack.push(entry);
            } else if entry.extension().is_some_and(|e| e == "rs") {
                let rel = entry
                    .strip_prefix(root)
                    .unwrap_or(&entry)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push(SourceFile::parse(&rel, &read(&entry)?));
            }
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Parses the TOML subset the workspace actually uses: `[package] name`,
/// and dependency names from `[dependencies]` / `[dev-dependencies]`.
/// `[workspace.dependencies]` and every other section are ignored.
pub fn parse_manifest(text: &str) -> Manifest {
    let mut manifest = Manifest::default();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        match section.as_str() {
            "package" if key == "name" => {
                manifest.name = value.trim_matches('"').to_string();
            }
            "dependencies" => manifest.dependencies.push(dep_name(key)),
            "dev-dependencies" => manifest.dev_dependencies.push(dep_name(key)),
            _ => {}
        }
    }
    manifest
}

/// `serde_json.workspace` → `serde_json`; plain keys pass through.
fn dep_name(key: &str) -> String {
    key.split('.').next().unwrap_or(key).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_subset_parses() {
        let m = parse_manifest(
            "[package]\nname = \"engine\"\n\n[dependencies]\nautomata = { path = \"../automata\" }\nserde.workspace = true\n\n[dev-dependencies]\nproptest = { path = \"../../shims/proptest\" }\n\n[workspace.dependencies]\nignored = \"1\"\n",
        );
        assert_eq!(m.name, "engine");
        assert_eq!(m.dependencies, vec!["automata", "serde"]);
        assert_eq!(m.dev_dependencies, vec!["proptest"]);
    }
}
