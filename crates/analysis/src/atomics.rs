//! Rule `ordering`: every non-`SeqCst` atomic memory ordering must carry a
//! `// ordering:` justification comment.
//!
//! Accepted justification shapes:
//!
//! - a trailing `// ordering: <why>` on the same line as the use;
//! - a standalone `// ordering: <why>` comment line, which covers the rest
//!   of its enclosing brace block (placed at module level it blankets the
//!   whole file — telemetry's Relaxed histogram counters are justified
//!   once this way).
//!
//! `SeqCst` needs no comment: it is the default the rule pushes toward
//! whenever a weaker ordering is not worth explaining.

use crate::scan::SourceFile;
use crate::workspace::Workspace;
use crate::{push_unless_suppressed, Finding};

const RULE: &str = "ordering";

/// Non-SeqCst orderings that require justification.
const WEAK: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

/// Runs the rule over every non-shim crate's sources.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for krate in ws.non_shims() {
        for file in &krate.sources {
            findings.extend(check_file(file));
        }
    }
    findings
}

/// Runs the rule over one file.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Depths of active standalone `// ordering:` blankets.
    let mut blankets: Vec<usize> = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        blankets.retain(|&d| line.depth_start >= d);
        if line.code.trim_start().starts_with('}') {
            blankets.retain(|&d| d < line.depth_start);
        }
        let has_note = line.comment.contains("ordering:");
        if has_note && line.code.trim().is_empty() {
            blankets.push(line.depth_start);
            continue;
        }
        if line.in_test {
            continue;
        }
        for weak in WEAK {
            if line.code.contains(weak) && !has_note && blankets.is_empty() {
                push_unless_suppressed(
                    &mut findings,
                    file,
                    idx,
                    Finding {
                        rule: RULE,
                        path: file.path.clone(),
                        line: idx + 1,
                        message: format!(
                            "`{weak}` without a `// ordering:` justification — \
                             explain why this is safe, or use SeqCst"
                        ),
                    },
                );
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_note_justifies() {
        let src = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed); // ordering: monotonic counter, no sync\n}\n";
        assert!(check_file(&SourceFile::parse("x.rs", src)).is_empty());
    }

    #[test]
    fn block_blanket_covers_rest_of_block() {
        let src = "fn f(c: &AtomicU64) {\n    // ordering: pure statistics, readers tolerate staleness\n    c.fetch_add(1, Ordering::Relaxed);\n    c.load(Ordering::Relaxed);\n}\nfn g(c: &AtomicU64) {\n    c.load(Ordering::Relaxed);\n}\n";
        let findings = check_file(&SourceFile::parse("x.rs", src));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 7);
    }

    #[test]
    fn seqcst_needs_nothing() {
        let src = "fn f(c: &AtomicU64) {\n    c.store(1, Ordering::SeqCst);\n}\n";
        assert!(check_file(&SourceFile::parse("x.rs", src)).is_empty());
    }
}
