//! `rpq-lint`: a workspace invariant checker for the rewriting-rpq engine.
//!
//! Six named rules machine-enforce the contracts that previously lived only
//! in ARCHITECTURE.md prose:
//!
//! | rule         | invariant                                                       |
//! |--------------|-----------------------------------------------------------------|
//! | `layering`   | crate dependency DAG respects the declared layer order          |
//! | `panic`      | no panic sites in service request paths or engine `try_*` fns   |
//! | `lock-order` | lock acquisition graph is acyclic; no guard held across I/O     |
//! | `ordering`   | every non-SeqCst atomic ordering carries a `// ordering:` note  |
//! | `try-parity` | every panicking `QueryEngine` method has a `try_` twin          |
//! | `hygiene`    | `forbid(unsafe_code)` + `deny(missing_docs)` on non-shim crates |
//!
//! Each finding is individually suppressible with `// lint: allow(<rule>)`
//! on the offending line or the line directly above it.  The scanner is a
//! token-level approximation, not a parser — see ARCHITECTURE.md for the
//! known false-negative shapes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod atomics;
pub mod hygiene;
pub mod layering;
pub mod locks;
pub mod panics;
pub mod parity;
pub mod scan;
pub mod workspace;

use scan::SourceFile;
use std::fmt;
use std::path::Path;
use workspace::Workspace;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule name (`layering`, `panic`, `lock-order`, `ordering`,
    /// `try-parity`, `hygiene`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file (or manifest).
    pub path: String,
    /// 1-based line number; 0 for file- or crate-level findings.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.path, self.rule, self.message)
        } else {
            write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
        }
    }
}

/// Whether the finding at 0-based `line_idx` in `file` is suppressed by a
/// `// lint: allow(<rule>)` comment on the same line or the line above.
pub fn suppressed(file: &SourceFile, line_idx: usize, rule: &str) -> bool {
    let needle = format!("lint: allow({rule})");
    let hit = |idx: usize| {
        file.lines
            .get(idx)
            .is_some_and(|l| l.comment.contains(&needle))
    };
    hit(line_idx) || (line_idx > 0 && hit(line_idx - 1))
}

/// Pushes `finding` unless a suppression comment covers it.
pub fn push_unless_suppressed(
    out: &mut Vec<Finding>,
    file: &SourceFile,
    line_idx: usize,
    finding: Finding,
) {
    if !suppressed(file, line_idx, finding.rule) {
        out.push(finding);
    }
}

/// Runs all six rules over the workspace rooted at `root`.
pub fn run_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let ws = Workspace::load(root)?;
    Ok(run_loaded(&ws))
}

/// Runs all six rules over an already-loaded workspace.
pub fn run_loaded(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(layering::check(ws));
    findings.extend(panics::check(ws));
    findings.extend(locks::check(ws));
    findings.extend(atomics::check(ws));
    findings.extend(parity::check(ws));
    findings.extend(hygiene::check(ws));
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    findings
}
