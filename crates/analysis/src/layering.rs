//! Rule `layering`: the crate dependency DAG must respect the declared
//! layer order, with shims as leaves.
//!
//! Layers (low to high):
//!
//! 1. `automata`, `telemetry`, `analysis` — foundations with no
//!    intra-workspace deps
//! 2. `regexlang`
//! 3. `graphdb`, `rewriter`
//! 4. `engine`, `tiling`
//! 5. `rpq`, `service`
//! 6. `bench`
//! 7. `rewriting-rpq` (the root facade)
//!
//! Shims sit below everything (rank 0) and may depend only on other shims.
//! An edge `A → B` is legal iff `rank(B) < rank(A)`; anything else is a
//! back-edge.  A full cycle scan backstops the rank check so that cycles
//! among unranked (unknown) crates are still reported.

use crate::workspace::Workspace;
use crate::Finding;
use std::collections::{HashMap, HashSet};

/// The declared layer rank of a known crate, or `None` for strangers.
fn rank(ws: &Workspace, name: &str) -> Option<usize> {
    if ws.by_name(name).is_some_and(|c| c.is_shim) {
        return Some(0);
    }
    Some(match name {
        "automata" | "telemetry" | "analysis" => 1,
        "regexlang" => 2,
        "graphdb" | "rewriter" => 3,
        "engine" | "tiling" => 4,
        "rpq" | "service" => 5,
        "bench" => 6,
        "rewriting-rpq" => 7,
        _ => return None,
    })
}

/// Checks every manifest edge against the layer order, then scans the
/// whole dependency graph for cycles.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut graph: HashMap<&str, Vec<&str>> = HashMap::new();
    for krate in &ws.crates {
        let manifest_path = if krate.rel_path == "." {
            "Cargo.toml".to_string()
        } else {
            format!("{}/Cargo.toml", krate.rel_path)
        };
        let deps = krate
            .manifest
            .dependencies
            .iter()
            .chain(krate.manifest.dev_dependencies.iter());
        for dep in deps {
            graph.entry(krate.name.as_str()).or_default().push(dep.as_str());
            if krate.is_shim {
                if !ws.by_name(dep).is_some_and(|c| c.is_shim) {
                    findings.push(Finding {
                        rule: "layering",
                        path: manifest_path.clone(),
                        line: 0,
                        message: format!(
                            "shim `{}` depends on non-shim `{dep}` — shims must be leaves",
                            krate.name
                        ),
                    });
                }
                continue;
            }
            let (Some(from), Some(to)) = (rank(ws, &krate.name), rank(ws, dep)) else {
                findings.push(Finding {
                    rule: "layering",
                    path: manifest_path.clone(),
                    line: 0,
                    message: format!(
                        "dependency `{}` → `{dep}` involves a crate with no declared layer",
                        krate.name
                    ),
                });
                continue;
            };
            if to >= from {
                findings.push(Finding {
                    rule: "layering",
                    path: manifest_path.clone(),
                    line: 0,
                    message: format!(
                        "back-edge: `{}` (layer {from}) depends on `{dep}` (layer {to}); \
                         dependencies must point strictly downward",
                        krate.name
                    ),
                });
            }
        }
    }
    findings.extend(cycles(&graph));
    findings
}

/// DFS cycle scan over the raw dependency graph.
fn cycles(graph: &HashMap<&str, Vec<&str>>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut done: HashSet<&str> = HashSet::new();
    let mut names: Vec<&&str> = graph.keys().collect();
    names.sort();
    for &start in names {
        if done.contains(start) {
            continue;
        }
        let mut path: Vec<&str> = Vec::new();
        let mut on_path: HashSet<&str> = HashSet::new();
        // Iterative DFS with an explicit path so the cycle can be printed.
        fn visit<'a>(
            node: &'a str,
            graph: &HashMap<&'a str, Vec<&'a str>>,
            path: &mut Vec<&'a str>,
            on_path: &mut HashSet<&'a str>,
            done: &mut HashSet<&'a str>,
            findings: &mut Vec<Finding>,
        ) {
            if done.contains(node) {
                return;
            }
            if !on_path.insert(node) {
                let from = path.iter().position(|&n| n == node).unwrap_or(0);
                findings.push(Finding {
                    rule: "layering",
                    path: "Cargo.toml".to_string(),
                    line: 0,
                    message: format!("dependency cycle: {} → {node}", path[from..].join(" → ")),
                });
                return;
            }
            path.push(node);
            if let Some(deps) = graph.get(node) {
                for dep in deps {
                    visit(dep, graph, path, on_path, done, findings);
                }
            }
            path.pop();
            on_path.remove(node);
            done.insert(node);
        }
        visit(start, graph, &mut path, &mut on_path, &mut done, &mut findings);
    }
    findings
}
