//! Fixture suite for `rpq-lint`: one bad snippet per rule proving the rule
//! fires, plus its suppressed twin proving `// lint: allow(<rule>)` (or the
//! rule-specific justification comment) silences exactly that finding — and
//! a whole-workspace run proving the committed tree is clean.

use analysis::scan::SourceFile;
use analysis::workspace::{CrateInfo, Manifest, Workspace};
use analysis::{run_loaded, run_workspace, Finding};
use std::path::Path;

/// Builds one in-memory workspace member.
fn krate(name: &str, rel: &str, deps: &[&str], files: &[(&str, &str)]) -> CrateInfo {
    CrateInfo {
        name: name.to_string(),
        rel_path: rel.to_string(),
        is_shim: rel.starts_with("shims/"),
        manifest: Manifest {
            name: name.to_string(),
            dependencies: deps.iter().map(|d| d.to_string()).collect(),
            dev_dependencies: Vec::new(),
        },
        sources: files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect(),
    }
}

fn rule_findings<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

// ---------------------------------------------------------------------------
// layering

#[test]
fn layering_back_edge_fires_and_forward_edge_is_clean() {
    // automata (layer 1) depending on engine (layer 4) is a back-edge.
    let bad = Workspace::from_parts(vec![
        krate("automata", "crates/automata", &["engine"], &[]),
        krate("engine", "crates/engine", &[], &[]),
    ]);
    let findings = run_loaded(&bad);
    let hits = rule_findings(&findings, "layering");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("back-edge"), "{}", hits[0]);
    assert_eq!(hits[0].path, "crates/automata/Cargo.toml");

    // The same edge the right way round is clean.
    let good = Workspace::from_parts(vec![
        krate("automata", "crates/automata", &[], &[]),
        krate("engine", "crates/engine", &["automata"], &[]),
    ]);
    assert!(rule_findings(&run_loaded(&good), "layering").is_empty());
}

#[test]
fn layering_shim_with_workspace_dep_fires() {
    let ws = Workspace::from_parts(vec![
        krate("rand", "shims/rand", &["automata"], &[]),
        krate("automata", "crates/automata", &[], &[]),
    ]);
    let findings = run_loaded(&ws);
    let hits = rule_findings(&findings, "layering");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("shims must be leaves"), "{}", hits[0]);
}

#[test]
fn layering_dependency_cycle_fires() {
    // Two unranked crates depending on each other: the rank check reports
    // the unknown layers, and the cycle scan reports the loop itself.
    let ws = Workspace::from_parts(vec![
        krate("zeta", "crates/zeta", &["yotta"], &[]),
        krate("yotta", "crates/yotta", &["zeta"], &[]),
    ]);
    let findings = run_loaded(&ws);
    assert!(
        rule_findings(&findings, "layering")
            .iter()
            .any(|f| f.message.contains("dependency cycle")),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------------------
// panic

const PANIC_BAD: &str = "\
/// Parses a count from an untrusted frame.
pub fn parse_count(input: &str) -> usize {
    input.parse().unwrap()
}
";

const PANIC_ALLOWED: &str = "\
/// Parses a count from an untrusted frame.
pub fn parse_count(input: &str) -> usize {
    // lint: allow(panic) — fixture: input is validated one frame up
    input.parse().unwrap()
}
";

#[test]
fn panic_in_service_fires_and_allow_silences() {
    let bad = Workspace::from_parts(vec![krate(
        "service",
        "crates/service",
        &[],
        &[("crates/service/src/handler.rs", PANIC_BAD)],
    )]);
    let findings = run_loaded(&bad);
    let hits = rule_findings(&findings, "panic");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("unwrap()"), "{}", hits[0]);
    assert_eq!((hits[0].path.as_str(), hits[0].line), ("crates/service/src/handler.rs", 3));

    let allowed = Workspace::from_parts(vec![krate(
        "service",
        "crates/service",
        &[],
        &[("crates/service/src/handler.rs", PANIC_ALLOWED)],
    )]);
    assert!(rule_findings(&run_loaded(&allowed), "panic").is_empty());
}

#[test]
fn panic_scope_in_engine_is_try_fns_only() {
    let src = "\
/// Panicking spelling: out of scope for the rule.
pub fn add(&mut self) {
    self.inner.get(0).unwrap();
}
/// Fallible spelling: must actually be panic-free.
pub fn try_add(&mut self) -> Result<(), Error> {
    self.inner.get(0).unwrap();
}
";
    let ws = Workspace::from_parts(vec![krate(
        "engine",
        "crates/engine",
        &[],
        &[("crates/engine/src/thing.rs", src)],
    )]);
    let findings = run_loaded(&ws);
    let hits = rule_findings(&findings, "panic");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("try_add"), "{}", hits[0]);
}

// ---------------------------------------------------------------------------
// lock-order

const LOCK_BAD: &str = "\
fn publish(&self) {
    let stats = self.stats.lock().unwrap();
    let snap = self.snapshot.lock().unwrap();
    drop(snap);
    drop(stats);
}
fn report(&self) {
    let snap = self.snapshot.lock().unwrap();
    let stats = self.stats.lock().unwrap();
    drop(stats);
    drop(snap);
}
";

#[test]
fn lock_order_inversion_fires_and_allow_silences() {
    let ws = Workspace::from_parts(vec![krate(
        "service",
        "crates/service",
        &[],
        &[("crates/service/src/state.rs", LOCK_BAD)],
    )]);
    let findings = run_loaded(&ws);
    let hits = rule_findings(&findings, "lock-order");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("lock acquisition cycle"), "{}", hits[0]);

    // The cycle is anchored at its first edge site (state.rs:3, where the
    // second lock of `publish` is taken); an allow there silences it.
    let allowed = LOCK_BAD.replace(
        "    let snap = self.snapshot.lock().unwrap();\n    drop(snap);",
        "    // lint: allow(lock-order) — fixture: documented inversion\n    \
         let snap = self.snapshot.lock().unwrap();\n    drop(snap);",
    );
    assert_ne!(allowed, LOCK_BAD, "fixture patch must apply");
    let ws = Workspace::from_parts(vec![krate(
        "service",
        "crates/service",
        &[],
        &[("crates/service/src/state.rs", &allowed)],
    )]);
    assert!(rule_findings(&run_loaded(&ws), "lock-order").is_empty());
}

#[test]
fn lock_order_guard_across_send_fires_and_allow_silences() {
    let bad = "\
fn notify(&self) {
    let state = self.state.lock().unwrap();
    self.tx.send(state.revision).ok();
}
";
    let ws = Workspace::from_parts(vec![krate(
        "service",
        "crates/service",
        &[],
        &[("crates/service/src/notify.rs", bad)],
    )]);
    let findings = run_loaded(&ws);
    let hits = rule_findings(&findings, "lock-order");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("blocking"), "{}", hits[0]);

    let allowed = bad.replace(
        "    self.tx.send(",
        "    // lint: allow(lock-order) — fixture: bounded channel, capacity proven\n    self.tx.send(",
    );
    let ws = Workspace::from_parts(vec![krate(
        "service",
        "crates/service",
        &[],
        &[("crates/service/src/notify.rs", &allowed)],
    )]);
    assert!(rule_findings(&run_loaded(&ws), "lock-order").is_empty());
}

// ---------------------------------------------------------------------------
// ordering

const ORDERING_BAD: &str = "\
/// Bumps the counter.
pub fn bump(&self) {
    self.count.fetch_add(1, Ordering::Relaxed);
}
";

#[test]
fn unjustified_weak_ordering_fires_and_note_silences() {
    let ws = Workspace::from_parts(vec![krate(
        "engine",
        "crates/engine",
        &[],
        &[("crates/engine/src/counters.rs", ORDERING_BAD)],
    )]);
    let findings = run_loaded(&ws);
    let hits = rule_findings(&findings, "ordering");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("Ordering::Relaxed"), "{}", hits[0]);

    // A same-line `// ordering:` note is the canonical justification…
    let noted = ORDERING_BAD.replace(
        "Ordering::Relaxed);",
        "Ordering::Relaxed); // ordering: Relaxed — monotone statistic",
    );
    let ws = Workspace::from_parts(vec![krate(
        "engine",
        "crates/engine",
        &[],
        &[("crates/engine/src/counters.rs", &noted)],
    )]);
    assert!(rule_findings(&run_loaded(&ws), "ordering").is_empty());

    // …and a standalone blanket note covering the enclosing block works too.
    let blanket = ORDERING_BAD.replace(
        "    self.count",
        "    // ordering: Relaxed throughout — monotone statistics only\n    self.count",
    );
    let ws = Workspace::from_parts(vec![krate(
        "engine",
        "crates/engine",
        &[],
        &[("crates/engine/src/counters.rs", &blanket)],
    )]);
    assert!(rule_findings(&run_loaded(&ws), "ordering").is_empty());
}

// ---------------------------------------------------------------------------
// try-parity

const PARITY_BAD: &str = "\
impl QueryEngine {
    /// Adds an edge.
    ///
    /// # Panics
    /// Panics on unknown labels.
    pub fn add_edge(&mut self) {}
}
";

#[test]
fn missing_try_twin_fires_and_allow_silences() {
    let ws = Workspace::from_parts(vec![krate(
        "engine",
        "crates/engine",
        &[],
        &[("crates/engine/src/query_engine.rs", PARITY_BAD)],
    )]);
    let findings = run_loaded(&ws);
    let hits = rule_findings(&findings, "try-parity");
    assert_eq!(hits.len(), 1, "{findings:?}");
    assert!(hits[0].message.contains("try_add_edge"), "{}", hits[0]);

    // Adding the twin satisfies the rule…
    let twinned = PARITY_BAD.replace(
        "    pub fn add_edge(&mut self) {}\n",
        "    pub fn add_edge(&mut self) {}\n\n    /// Fallible twin.\n    \
         pub fn try_add_edge(&mut self) -> Result<(), Error> { Ok(()) }\n",
    );
    let ws = Workspace::from_parts(vec![krate(
        "engine",
        "crates/engine",
        &[],
        &[("crates/engine/src/query_engine.rs", &twinned)],
    )]);
    assert!(rule_findings(&run_loaded(&ws), "try-parity").is_empty());

    // …and so does an explicit suppression on the offending header.
    let allowed = PARITY_BAD.replace(
        "    pub fn add_edge",
        "    // lint: allow(try-parity) — fixture: twin lands in the next PR\n    pub fn add_edge",
    );
    let ws = Workspace::from_parts(vec![krate(
        "engine",
        "crates/engine",
        &[],
        &[("crates/engine/src/query_engine.rs", &allowed)],
    )]);
    assert!(rule_findings(&run_loaded(&ws), "try-parity").is_empty());
}

// ---------------------------------------------------------------------------
// hygiene

const HYGIENE_BAD: &str = "\
//! A crate missing its hygiene attributes.
#![warn(missing_docs)]

/// Does nothing.
pub fn noop() {}
";

#[test]
fn missing_hygiene_attributes_fire_and_allow_silences() {
    let ws = Workspace::from_parts(vec![krate(
        "widget",
        "crates/widget",
        &[],
        &[("crates/widget/src/lib.rs", HYGIENE_BAD)],
    )]);
    let findings = run_loaded(&ws);
    let hits = rule_findings(&findings, "hygiene");
    assert_eq!(hits.len(), 2, "{findings:?}");
    assert!(hits.iter().any(|f| f.message.contains("forbid(unsafe_code)")));
    assert!(hits.iter().any(|f| f.message.contains("deny(missing_docs)")));

    // File-level findings anchor at line 1, so an allow there silences both.
    let allowed = HYGIENE_BAD.replace(
        "//! A crate missing its hygiene attributes.",
        "//! A crate missing its hygiene attributes.  lint: allow(hygiene)",
    );
    let ws = Workspace::from_parts(vec![krate(
        "widget",
        "crates/widget",
        &[],
        &[("crates/widget/src/lib.rs", &allowed)],
    )]);
    assert!(rule_findings(&run_loaded(&ws), "hygiene").is_empty());
}

// ---------------------------------------------------------------------------
// the committed workspace

#[test]
fn committed_workspace_is_clean() {
    // crates/analysis/ → the workspace root two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let findings = run_workspace(root).expect("workspace loads");
    assert!(
        findings.is_empty(),
        "committed workspace must lint clean:\n{}",
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
