//! Integration tests reproducing every worked example of the paper
//! end-to-end through the public APIs (experiments E1–E4 of DESIGN.md).

use automata::{nfa_equivalent, Nfa};
use regexlang::{parse, thompson};
use rewriter::{rewrite, run_and_report, RewriteProblem};
use rpq::{find_partial_rewriting, rewrite_rpq, RpqRewriteProblem};

/// Checks that the rewriting automaton denotes exactly the language of the
/// given expression over the view symbols.
fn assert_rewriting_language(rewriting: &rewriter::MaximalRewriting, expected: &str) {
    let expected_nfa = thompson(&parse(expected).unwrap(), rewriting.automaton.alphabet()).unwrap();
    assert!(
        nfa_equivalent(&Nfa::from_dfa(&rewriting.automaton), &expected_nfa).holds(),
        "expected the rewriting language {expected}, got {}",
        rewriting.regex()
    );
}

#[test]
fn figure1_full_pipeline() {
    // Example 2.2 / Figure 1: E0 = a·(b·a+c)*, E = {a, a·c*·b, c}.
    let problem = RewriteProblem::parse(
        "a·(b·a+c)*",
        [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
    )
    .unwrap();
    let (rewriting, exactness) = rewrite(&problem);
    assert_rewriting_language(&rewriting, "e2*·e1·e3*");
    // Example 2.3: the rewriting is exact.
    assert!(exactness.exact);
    assert!(exactness.counterexample.is_none());
    // The printable form simplifies to the paper's expression.
    assert_eq!(rewriting.regex().to_string(), "e2*·e1·e3*");
}

#[test]
fn figure1_report_is_consistent() {
    let problem = RewriteProblem::parse(
        "a·(b·a+c)*",
        [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
    )
    .unwrap();
    let report = run_and_report(&problem);
    assert!(report.exact);
    assert!(!report.empty);
    assert_eq!(report.rewriting, "e2*·e1·e3*");
    assert_eq!(report.stats.a_prime_states, report.stats.query_dfa_states);
}

#[test]
fn example_2_1_sigma_e_maximality() {
    // E0 = a*, E = {a*}: the Σ_E-maximal rewriting is e*, not e.
    let problem = RewriteProblem::parse("a*", [("e", "a*")]).unwrap();
    let (rewriting, exactness) = rewrite(&problem);
    assert_rewriting_language(&rewriting, "e*");
    assert!(exactness.exact);
    // e alone is a rewriting (Definition 2.1) but strictly smaller over Σ_E.
    let candidate = thompson(&parse("e").unwrap(), problem.views.sigma_e()).unwrap();
    assert!(rewriter::verify_rewriting(&problem, &candidate).is_rewriting());
    assert!(rewriter::sigma_e_contained(
        &candidate,
        &Nfa::from_dfa(&rewriting.automaton)
    ));
    assert!(!rewriter::sigma_e_contained(
        &Nfa::from_dfa(&rewriting.automaton),
        &candidate
    ));
}

#[test]
fn example_2_3_dropping_a_view_loses_exactness() {
    let problem =
        RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b")]).unwrap();
    let (rewriting, exactness) = rewrite(&problem);
    assert_rewriting_language(&rewriting, "e2*·e1");
    assert!(!exactness.exact);
    // The counterexample is a word of L(E0) that the views cannot produce.
    let cex = exactness.counterexample.unwrap();
    let cex_refs: Vec<&str> = cex.iter().map(String::as_str).collect();
    let query_dfa = automata::determinize(
        &thompson(&problem.query, problem.views.sigma()).unwrap(),
    );
    assert!(query_dfa.accepts_names(&cex_refs));
}

#[test]
fn example_4_1_rpq_rewriting_and_partial_rewriting() {
    // Q0 = a·(b+c), Q = {a, b}: the rewriting q1·q2 is not exact.
    let problem =
        RpqRewriteProblem::parse_labels("a·(b+c)", [("q1", "a"), ("q2", "b")]).unwrap();
    let rewriting = rewrite_rpq(&problem).unwrap();
    assert_eq!(rewriting.regex().to_string(), "q1·q2");
    assert!(!rewriting.is_exact());

    // Adding the view c (as the paper does) yields the exact q1·(q2+q3).
    let extended = RpqRewriteProblem::parse_labels(
        "a·(b+c)",
        [("q1", "a"), ("q2", "b"), ("q3", "c")],
    )
    .unwrap();
    let rewriting = rewrite_rpq(&extended).unwrap();
    assert!(rewriting.is_exact());
    assert!(rewriting.maximal.accepts(&["q1", "q2"]));
    assert!(rewriting.maximal.accepts(&["q1", "q3"]));
    assert!(!rewriting.maximal.accepts(&["q1"]));

    // The partial-rewriting search discovers the same extension on its own.
    let partial = find_partial_rewriting(&problem).unwrap();
    assert_eq!(partial.num_added(), 1);
    assert!(partial.added[0].is_elementary());
    assert!(partial.rewriting.is_exact());
}

#[test]
fn intro_query_rome_jerusalem_restaurant() {
    // The introduction's motivating query, rewritten over per-label views and
    // answered through them on the synthetic travel graph.
    let db = graphdb::travel_graph(5);
    let problem = RpqRewriteProblem::parse_labels(
        "(rome+jerusalem)·flight*·restaurant",
        [
            ("v_landmark", "rome+jerusalem"),
            ("v_hop", "flight"),
            ("v_eat", "restaurant"),
        ],
    )
    .unwrap();
    let rewriting = rewrite_rpq(&problem).unwrap();
    assert!(rewriting.is_exact());
    let cmp = rpq::compare_on_database(&db, &problem, &rewriting);
    assert!(cmp.sound && cmp.complete);
    assert!(cmp.direct_size > 0);
}
