//! Integration tests for the §3.2 lower-bound machinery (experiments E7/E8):
//! the tiling reduction is validated against the independent brute-force
//! solver at the word level, and the counter yardstick of Theorem 3.4 is
//! checked structurally.
//!
//! The full end-to-end rewriting of the encoded instances is exercised by the
//! `lower_bounds` example and the experiments binary (release builds); here
//! we keep to the word-level checks so the suite stays fast in debug builds.

use tiling::{
    check_tiling, counter_word, counter_word_length, exponential_family, solve, EncodedTiling,
    TileSystem,
};

#[test]
fn reduction_instances_are_polynomial_in_n() {
    let sizes: Vec<usize> = (1..=4)
        .map(|n| EncodedTiling::encode(&TileSystem::solvable_chain(), n).instance_size())
        .collect();
    // Strictly growing …
    assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    // … but far slower than the 2^n row width: quadratic-ish growth means the
    // size at n = 4 stays well below 16 × the size at n = 1.
    assert!(sizes[3] < 16 * sizes[0]);
}

#[test]
fn word_level_reduction_agrees_with_the_solver_on_width_two() {
    for system in [
        TileSystem::solvable_chain(),
        TileSystem::striped(),
        TileSystem::unsolvable(),
    ] {
        let enc = EncodedTiling::encode(&system, 1);
        let solver_says = solve(&system, 2, 4);
        match solver_says {
            Some(tiling) => {
                // The solver's witness, flattened row-major, must be accepted
                // by the word-level rewriting check.
                let word: Vec<String> = tiling.iter().flatten().cloned().collect();
                let refs: Vec<&str> = word.iter().map(String::as_str).collect();
                assert!(
                    enc.word_in_rewriting(&refs),
                    "solver witness rejected for a solvable system"
                );
            }
            None => {
                // Spot-check that candidate words of tiling shape are all
                // rejected for the unsolvable system.
                let tiles: Vec<&str> = system.tiles.iter().map(String::as_str).collect();
                for &a in &tiles {
                    for &b in &tiles {
                        assert!(
                            !enc.word_in_rewriting(&[a, b]),
                            "word {a}·{b} wrongly accepted for an unsolvable system"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn invalid_tilings_are_rejected_even_when_corners_match() {
    let enc = EncodedTiling::encode(&TileSystem::solvable_chain(), 1);
    // Corners right (s … f) but the second row breaks the horizontal
    // relation: (f, s) ∉ H.
    assert!(!enc.word_in_rewriting(&["s", "f", "f", "s"]));
    // Corners right but the vertical relation breaks: (s, f) ∉ V.
    assert!(!enc.word_in_rewriting(&["s", "m", "f", "f"]));
    // A correct 2-row tiling is accepted.
    assert!(enc.word_in_rewriting(&["s", "m", "s", "f"]));
}

#[test]
fn decoded_words_check_out_as_tilings() {
    let system = TileSystem::solvable_chain();
    let enc = EncodedTiling::encode(&system, 1);
    let word = vec!["s".to_string(), "m".to_string(), "s".to_string(), "f".to_string()];
    let tiling = enc.word_to_tiling(&word).unwrap();
    assert_eq!(tiling.len(), 2);
    assert!(check_tiling(&system, 2, &tiling));
    // Words of the wrong length do not decode.
    assert!(enc.word_to_tiling(&word[..3]).is_none());
}

#[test]
fn counter_yardstick_matches_the_papers_formula() {
    assert_eq!(counter_word_length(1), 8);
    assert_eq!(counter_word_length(2), 64);
    assert_eq!(counter_word_length(3), 2048);
    // 2^n · 2^(2^n) always: check against the direct construction for small
    // widths (width = 2^n).
    assert_eq!(counter_word(2).len() as u128, counter_word_length(1));
    assert_eq!(counter_word(4).len() as u128, counter_word_length(2));
    assert_eq!(counter_word(8).len() as u128, counter_word_length(3));
}

#[test]
fn exponential_family_instances_grow_polynomially() {
    let s1 = exponential_family(1).instance_size();
    let s4 = exponential_family(4).instance_size();
    assert!(s1 < s4);
    assert!(s4 < 16 * s1, "instance size must stay polynomial while 2^n grows");
}

#[test]
fn exponential_family_words_are_single_rows() {
    // Every word accepted at tiling length must be a single row s·m^(w-2)·f
    // because V is empty; check the two candidate shapes at width 2.
    let enc = exponential_family(1);
    assert!(enc.word_in_rewriting(&["s", "f"]));
    assert!(!enc.word_in_rewriting(&["s", "f", "s", "f"]), "two rows need V pairs");
    assert!(!enc.word_in_rewriting(&["s", "m"]));
}
