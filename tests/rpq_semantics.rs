//! Integration tests for the regular-path-query layer (Section 4 /
//! experiment E9): the semantic definition of a rewriting — soundness on
//! *every* database, completeness exactly for exact rewritings — checked on
//! generated graphs.

use automata::Alphabet;
use graphdb::{layered_graph, random_graph, travel_graph, tree_graph, GraphDb, RandomGraphConfig};
use rpq::{answer_rpq, compare_on_database, rewrite_rpq, RpqRewriteProblem};

fn figure1_problem() -> RpqRewriteProblem {
    RpqRewriteProblem::parse_labels(
        "a·(b·a+c)*",
        [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
    )
    .unwrap()
}

fn abc() -> Alphabet {
    Alphabet::from_chars(['a', 'b', 'c']).unwrap()
}

#[test]
fn exact_rewritings_are_complete_on_many_graph_shapes() {
    let problem = figure1_problem();
    let rewriting = rewrite_rpq(&problem).unwrap();
    assert!(rewriting.is_exact());
    let mut databases: Vec<GraphDb> = Vec::new();
    for seed in 0..6 {
        databases.push(random_graph(
            &abc(),
            &RandomGraphConfig {
                num_nodes: 30,
                num_edges: 100,
            },
            seed,
        ));
        databases.push(tree_graph(&abc(), 40, seed));
        databases.push(layered_graph(&abc(), 4, 6, 2, seed));
    }
    for (i, db) in databases.iter().enumerate() {
        let cmp = compare_on_database(db, &problem, &rewriting);
        assert!(cmp.sound, "unsound on database {i}");
        assert!(cmp.complete, "incomplete on database {i} despite exactness");
    }
}

#[test]
fn non_exact_rewritings_are_sound_everywhere_and_incomplete_somewhere() {
    let problem =
        RpqRewriteProblem::parse_labels("a·(b+c)", [("q1", "a"), ("q2", "b")]).unwrap();
    let rewriting = rewrite_rpq(&problem).unwrap();
    assert!(!rewriting.is_exact());
    let mut incomplete_somewhere = false;
    for seed in 0..10 {
        let db = random_graph(
            &abc(),
            &RandomGraphConfig {
                num_nodes: 20,
                num_edges: 70,
            },
            seed,
        );
        let cmp = compare_on_database(&db, &problem, &rewriting);
        assert!(cmp.sound, "unsound on seed {seed}");
        if !cmp.complete {
            incomplete_somewhere = true;
        }
    }
    assert!(
        incomplete_somewhere,
        "a non-exact rewriting should miss answers on some random database"
    );
}

#[test]
fn view_based_answers_equal_direct_answers_on_the_travel_graph() {
    let db = travel_graph(10);
    let problem = RpqRewriteProblem::parse_labels(
        "(rome+jerusalem)·flight*·restaurant",
        [
            ("v_landmark", "rome+jerusalem"),
            ("v_hop", "flight"),
            ("v_eat", "restaurant"),
        ],
    )
    .unwrap();
    let rewriting = rewrite_rpq(&problem).unwrap();
    assert!(rewriting.is_exact());
    let direct = answer_rpq(&db, &problem.query, &problem.theory);
    let via_views = rpq::answer_rewriting_over_views(&db, &problem, &rewriting);
    assert_eq!(direct, via_views);
    assert!(!direct.is_empty());
}

#[test]
fn empty_rewritings_answer_nothing_but_stay_sound() {
    let problem = RpqRewriteProblem::parse_labels("a·b", [("v", "c")]).unwrap();
    let rewriting = rewrite_rpq(&problem).unwrap();
    assert!(rewriting.is_empty());
    for seed in 0..4 {
        let db = random_graph(
            &abc(),
            &RandomGraphConfig {
                num_nodes: 15,
                num_edges: 60,
            },
            seed,
        );
        let cmp = compare_on_database(&db, &problem, &rewriting);
        assert!(cmp.sound);
        assert_eq!(cmp.via_views_size, 0);
    }
}

#[test]
fn theory_aware_rewriting_answers_through_predicate_views() {
    // The §4.2 example: T ⊨ A → B, query over B, view over A.  On a graph
    // the view-based answer returns exactly the A-labeled edges, a sound
    // subset of the B answer.
    let domain = Alphabet::from_names(["a1", "a2", "b_extra"]).unwrap();
    let theory = graphdb::Theory::new(
        domain.clone(),
        [
            ("A".to_string(), vec!["a1".to_string(), "a2".to_string()]),
            (
                "B".to_string(),
                vec!["a1".to_string(), "a2".to_string(), "b_extra".to_string()],
            ),
        ],
    );
    let query = rpq::Rpq::new(
        regexlang::parse("B").unwrap(),
        [("B".to_string(), graphdb::Formula::pred("B"))],
    )
    .unwrap();
    let view = rpq::Rpq::new(
        regexlang::parse("A").unwrap(),
        [("A".to_string(), graphdb::Formula::pred("A"))],
    )
    .unwrap();
    let problem =
        RpqRewriteProblem::new(query, [("vA".to_string(), view)], theory).unwrap();
    let rewriting = rewrite_rpq(&problem).unwrap();

    let mut db = GraphDb::new(domain);
    db.add_edge_named("x", "a1", "y");
    db.add_edge_named("y", "b_extra", "z");
    let direct = answer_rpq(&db, &problem.query, &problem.theory);
    let via_views = rpq::answer_rewriting_over_views(&db, &problem, &rewriting);
    assert_eq!(direct.len(), 2);
    assert_eq!(via_views.len(), 1);
    assert!(via_views.is_subset(&direct));
}
