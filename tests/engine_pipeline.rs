//! End-to-end integration of the query engine with the rewriting pipeline:
//! a query is rewritten over views (Section 2/4 machinery), the views are
//! materialized and maintained by the engine across edge insertions, and
//! the exact rewriting's view-based answer is checked against direct
//! evaluation at every revision — the paper's Definition 4.3 invariant kept
//! live on a mutating database.

use graphdb::{random_graph, RandomGraphConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq::{
    answer_rewriting_over_views_at, answer_rewriting_over_views_in, answer_rpq_at, answer_rpq_in,
    compare_on_database_at, compare_on_database_in, rewrite_rpq, snapshot_for_problem,
    RpqRewriteProblem,
};

fn figure1_problem() -> RpqRewriteProblem {
    RpqRewriteProblem::parse_labels(
        "a·(b·a+c)*",
        [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
    )
    .unwrap()
}

#[test]
fn exact_rewriting_stays_complete_across_engine_mutations() {
    let problem = figure1_problem();
    let rewriting = rewrite_rpq(&problem).unwrap();
    assert!(rewriting.is_exact());
    let domain = problem.theory.domain().clone();

    for seed in 0..5u64 {
        let db = random_graph(
            &domain,
            &RandomGraphConfig {
                num_nodes: 40,
                num_edges: 120,
            },
            seed,
        );
        let nodes = db.num_nodes();
        let mut engine = engine::QueryEngine::new(db);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        for step in 0..4 {
            // Theorem 4.1 / Definition 4.3: for an exact rewriting the
            // view-based answer equals the direct answer — at every revision.
            let direct = answer_rpq_in(&mut engine, &problem.query, &problem.theory).clone();
            let via_views = answer_rewriting_over_views_in(&mut engine, &problem, &rewriting);
            assert_eq!(*direct, via_views, "seed {seed} revision {step}");

            let cmp = compare_on_database_in(&mut engine, &problem, &rewriting);
            assert!(cmp.sound && cmp.complete, "seed {seed} revision {step}");

            let from = rng.gen_range(0..nodes);
            let to = rng.gen_range(0..nodes);
            let label = automata::Symbol(rng.gen_range(0..domain.len()) as u32);
            engine.add_edge(from, label, to);
        }
        let stats = engine.stats();
        // The views were materialized once and only repaired afterwards…
        assert_eq!(stats.view_full_materializations, 3, "seed {seed}");
        assert!(stats.view_delta_repairs >= 4 * 3, "seed {seed}");
        // …and each automaton (query, three views, rewriting) was compiled
        // exactly once across all revisions.
        assert_eq!(stats.compile_misses, 5, "seed {seed}");
        assert!(stats.compile_hits > 0, "seed {seed}");
    }
}

#[test]
fn concurrent_snapshot_readers_keep_definition_4_3_at_their_pinned_revisions() {
    // The serving shape of the paper's workload: the rewriting is built
    // once, views are registered on a writer engine, and revision-pinned
    // snapshots are handed to reader threads.  While the writer streams
    // insertions (incrementally repairing its extensions copy-on-write),
    // every reader re-checks Theorem 4.1 / Definition 4.3 — view-based
    // answer == direct answer for an exact rewriting — at its *own*
    // revision, concurrently, through the shared caches.
    let problem = figure1_problem();
    let rewriting = rewrite_rpq(&problem).unwrap();
    assert!(rewriting.is_exact());
    let domain = problem.theory.domain().clone();
    let db = random_graph(
        &domain,
        &RandomGraphConfig {
            num_nodes: 40,
            num_edges: 120,
        },
        0xfab,
    );
    let nodes = db.num_nodes();

    let mut engine = engine::QueryEngine::new(db);
    let mut rng = StdRng::seed_from_u64(0x51afe);
    let mut snapshots = Vec::new();
    for _ in 0..4 {
        snapshots.push(snapshot_for_problem(&mut engine, &problem));
        let batch: Vec<_> = (0..3)
            .map(|_| {
                (
                    rng.gen_range(0..nodes),
                    automata::Symbol(rng.gen_range(0..domain.len()) as u32),
                    rng.gen_range(0..nodes),
                )
            })
            .collect();
        engine.add_edges(&batch);
    }
    snapshots.push(snapshot_for_problem(&mut engine, &problem));

    std::thread::scope(|scope| {
        for snapshot in &snapshots {
            let problem = &problem;
            let rewriting = &rewriting;
            scope.spawn(move || {
                let direct = answer_rpq_at(snapshot, &problem.query, &problem.theory);
                let via_views = answer_rewriting_over_views_at(snapshot, rewriting);
                assert_eq!(
                    *direct,
                    via_views,
                    "revision {} lost exactness",
                    snapshot.revision()
                );
                let cmp = compare_on_database_at(snapshot, problem, rewriting);
                assert!(cmp.sound && cmp.complete, "revision {}", snapshot.revision());
            });
        }
    });
    // Monotone insertions at distinct revisions: later snapshots answer at
    // least as much (and the revisions really are distinct).
    for pair in snapshots.windows(2) {
        assert_eq!(pair[0].revision() + 1, pair[1].revision());
        let before = answer_rpq_at(&pair[0], &problem.query, &problem.theory);
        let after = answer_rpq_at(&pair[1], &problem.query, &problem.theory);
        assert!(before.is_subset(&after), "answers must grow monotonically");
    }
    // One compile of each automaton (query, 3 views, rewriting) served
    // every revision and every reader thread.
    assert_eq!(engine.stats().compile_misses, 5);
}
