//! Cross-crate pipeline tests: construction options, reports, DOT export,
//! and the interplay between the regular-expression layer and the RPQ layer.

use automata::{dfa_to_dot, nfa_equivalent, nfa_to_dot, Nfa};
use regexlang::{parse, thompson};
use rewriter::{
    compute_maximal_rewriting, compute_maximal_rewriting_with, run_and_report_with,
    RewriteProblem, RewriterOptions,
};

fn option_grid() -> Vec<RewriterOptions> {
    let mut out = Vec::new();
    for minimize_query_dfa in [false, true] {
        for use_glushkov in [false, true] {
            for per_pair_reachability in [false, true] {
                out.push(RewriterOptions {
                    minimize_query_dfa,
                    use_glushkov,
                    per_pair_reachability,
                });
            }
        }
    }
    out
}

#[test]
fn all_construction_options_agree_on_language_and_exactness() {
    let problems = vec![
        RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")]).unwrap(),
        RewriteProblem::parse("(a+b)*·c", [("u", "a+b"), ("w", "c")]).unwrap(),
        RewriteProblem::parse("a·b·c·a·b", [("x", "a·b"), ("y", "c")]).unwrap(),
        RewriteProblem::parse("a*", [("e", "a·a")]).unwrap(),
    ];
    for problem in problems {
        let reference = compute_maximal_rewriting(&problem);
        let reference_report = run_and_report_with(&problem, &RewriterOptions::default());
        for options in option_grid() {
            let other = compute_maximal_rewriting_with(&problem, &options);
            assert!(
                nfa_equivalent(
                    &Nfa::from_dfa(&reference.automaton),
                    &Nfa::from_dfa(&other.automaton)
                )
                .holds(),
                "language differs under {options:?} for {}",
                problem.query
            );
            let report = run_and_report_with(&problem, &options);
            assert_eq!(report.exact, reference_report.exact);
            assert_eq!(report.empty, reference_report.empty);
        }
    }
}

#[test]
fn odd_even_rewriting_example() {
    // L(E0) = words over {a} of even length; the view is a single `a`.
    // The maximal rewriting is (e·e)* and it is exact.
    let problem = RewriteProblem::parse("(a·a)*", [("e", "a")]).unwrap();
    let report = rewriter::run_and_report(&problem);
    assert!(report.exact);
    let rewriting = compute_maximal_rewriting(&problem);
    let expected = thompson(&parse("(e·e)*").unwrap(), problem.views.sigma_e()).unwrap();
    assert!(nfa_equivalent(&Nfa::from_dfa(&rewriting.automaton), &expected).holds());
    // With a length-two view instead, the rewriting of odd-length words is
    // empty.
    let odd = RewriteProblem::parse("a·(a·a)*", [("e", "a·a")]).unwrap();
    let report = rewriter::run_and_report(&odd);
    assert!(report.empty);
    assert!(!report.exact);
}

#[test]
fn overlapping_views_pick_the_union_of_decompositions() {
    // Two overlapping decompositions of the same query are both kept in the
    // maximal rewriting.
    let problem = RewriteProblem::parse(
        "a·b·c",
        [("ab", "a·b"), ("c_", "c"), ("a_", "a"), ("bc", "b·c")],
    )
    .unwrap();
    let rewriting = compute_maximal_rewriting(&problem);
    assert!(rewriting.accepts(&["ab", "c_"]));
    assert!(rewriting.accepts(&["a_", "bc"]));
    assert!(!rewriting.accepts(&["ab", "bc"]));
    let report = rewriter::run_and_report(&problem);
    assert!(report.exact);
}

#[test]
fn reports_serialize_and_round_trip_through_json() {
    let problem =
        RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")]).unwrap();
    let report = rewriter::run_and_report(&problem);
    let json = serde_json::to_value(&report).unwrap();
    assert_eq!(json["exact"], serde_json::Value::Bool(true));
    assert_eq!(json["rewriting"], serde_json::Value::String("e2*·e1·e3*".into()));
    assert!(json["stats"]["query_dfa_states"].as_u64().unwrap() >= 2);
}

#[test]
fn dot_export_of_the_figure1_artifacts() {
    let problem =
        RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")]).unwrap();
    let rewriting = compute_maximal_rewriting(&problem);
    let ad = dfa_to_dot(&rewriting.query_dfa, "A_d");
    let aprime = nfa_to_dot(&rewriting.a_prime, "A_prime");
    let r = dfa_to_dot(&rewriting.automaton, "rewriting");
    for (name, dot) in [("A_d", &ad), ("A_prime", &aprime), ("rewriting", &r)] {
        assert!(dot.starts_with(&format!("digraph \"{name}\"")));
        assert!(dot.contains("->"), "{name} should have edges");
    }
    // A' is labeled over the view alphabet.
    assert!(aprime.contains("label=\"e2\""));
    // A_d is labeled over the base alphabet.
    assert!(ad.contains("label=\"a\""));
}

#[test]
fn rpq_layer_agrees_with_regex_layer_on_label_queries() {
    // For label-based queries over an elementary theory, the RPQ rewriting is
    // exactly the regular-expression rewriting.
    let regex_problem =
        RewriteProblem::parse("a·(b·a+c)*", [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")]).unwrap();
    let regex_rewriting = compute_maximal_rewriting(&regex_problem);
    let rpq_problem = rpq::RpqRewriteProblem::parse_labels(
        "a·(b·a+c)*",
        [("e1", "a"), ("e2", "a·c*·b"), ("e3", "c")],
    )
    .unwrap();
    let rpq_rewriting = rpq::rewrite_rpq(&rpq_problem).unwrap();
    assert!(nfa_equivalent(
        &Nfa::from_dfa(&regex_rewriting.automaton),
        &Nfa::from_dfa(&rpq_rewriting.maximal.automaton)
    )
    .holds());
}
