//! Property-based tests of the rewriting construction's defining invariants
//! (Definitions 2.1–2.3 and Theorems 2.1–2.3), on randomly generated queries
//! and view sets.

use automata::{determinize, dfa_subset_of_nfa, Nfa};
use proptest::prelude::*;
use regexlang::{random_regex, random_views, thompson, RandomRegexConfig, Regex};
use rewriter::{
    check_exactness, compute_maximal_rewriting, expand_dfa, verify_rewriting, RewriteProblem,
    View, ViewSet,
};

/// Builds a random rewriting problem from two seeds.
fn problem_from_seeds(query_seed: u64, view_seed: u64, num_views: usize) -> RewriteProblem {
    let alphabet = automata::Alphabet::from_chars(['a', 'b', 'c']).unwrap();
    let query_cfg = RandomRegexConfig {
        target_size: 10,
        ..Default::default()
    };
    let view_cfg = RandomRegexConfig {
        target_size: 4,
        ..Default::default()
    };
    let query = random_regex(&alphabet, &query_cfg, query_seed);
    let views: Vec<View> = random_views(&alphabet, &view_cfg, num_views, view_seed)
        .into_iter()
        .enumerate()
        .map(|(i, def)| {
            let def = if def.is_syntactically_empty() {
                Regex::symbol("a")
            } else {
                def
            };
            View::new(format!("v{i}"), def)
        })
        .collect();
    let views = ViewSet::new(alphabet, views).unwrap();
    RewriteProblem::new(query, views).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Definition 2.1 (soundness): the expansion of the maximal rewriting is
    /// always contained in the query language.
    #[test]
    fn maximal_rewriting_is_sound(query_seed in 0u64..500, view_seed in 0u64..500) {
        let problem = problem_from_seeds(query_seed, view_seed, 3);
        let rewriting = compute_maximal_rewriting(&problem);
        let expansion = expand_dfa(&rewriting.automaton, &problem.views);
        let query_nfa = thompson(&problem.query, problem.views.sigma()).unwrap();
        prop_assert!(
            dfa_subset_of_nfa(&determinize(&expansion), &query_nfa).holds(),
            "unsound rewriting for query {} and views {}",
            problem.query,
            problem.views.render()
        );
    }

    /// Theorem 2.2 (Σ_E-maximality): no single view symbol outside the
    /// rewriting can be appended to one of its words while remaining a
    /// rewriting … tested through the stronger check that every one- or
    /// two-symbol Σ_E-word in a rewriting candidate relation is classified
    /// consistently: a word is accepted by the rewriting automaton iff its
    /// expansion is contained in the query language.
    #[test]
    fn membership_matches_expansion_containment(query_seed in 0u64..300, view_seed in 0u64..300) {
        let problem = problem_from_seeds(query_seed, view_seed, 2);
        let rewriting = compute_maximal_rewriting(&problem);
        let sigma_e = problem.views.sigma_e().clone();
        let query_nfa = thompson(&problem.query, problem.views.sigma()).unwrap();
        // Enumerate all Σ_E-words of length ≤ 2.
        let mut words: Vec<Vec<automata::Symbol>> = vec![vec![]];
        for a in sigma_e.symbols() {
            words.push(vec![a]);
            for b in sigma_e.symbols() {
                words.push(vec![a, b]);
            }
        }
        for word in words {
            let in_rewriting = rewriting.automaton.accepts(&word);
            let expansion = rewriter::expand_word(&word, &problem.views);
            let contained =
                dfa_subset_of_nfa(&determinize(&expansion), &query_nfa).holds();
            prop_assert_eq!(
                in_rewriting, contained,
                "word {:?} misclassified for query {}", word, problem.query
            );
        }
    }

    /// Theorem 2.3 / Corollary 2.1: when the exactness check succeeds, the
    /// expansion of the rewriting is language-equal to the query.
    #[test]
    fn exactness_report_is_correct(query_seed in 0u64..300, view_seed in 0u64..300) {
        let problem = problem_from_seeds(query_seed, view_seed, 3);
        let rewriting = compute_maximal_rewriting(&problem);
        let report = check_exactness(&rewriting, &problem.views);
        let expansion = expand_dfa(&rewriting.automaton, &problem.views);
        let query_nfa = thompson(&problem.query, problem.views.sigma()).unwrap();
        let forward = dfa_subset_of_nfa(&determinize(&expansion), &query_nfa).holds();
        let backward = dfa_subset_of_nfa(
            &determinize(&query_nfa),
            &expansion,
        ).holds();
        prop_assert!(forward, "soundness must always hold");
        prop_assert_eq!(report.exact, backward, "exactness flag disagrees with containment");
        if let Some(cex) = report.counterexample {
            // The counterexample must be in L(E0) but not in the expansion.
            let refs: Vec<&str> = cex.iter().map(String::as_str).collect();
            let word = problem.views.sigma().word(&refs).unwrap();
            prop_assert!(determinize(&query_nfa).accepts(&word));
            prop_assert!(!expansion.accepts(&word));
        }
    }

    /// The sub-language of any maximal rewriting is still a rewriting
    /// (monotonicity of Definition 2.1), exercised through `verify_rewriting`.
    #[test]
    fn prefixes_of_the_rewriting_are_rewritings(query_seed in 0u64..200, view_seed in 0u64..200) {
        let problem = problem_from_seeds(query_seed, view_seed, 2);
        let rewriting = compute_maximal_rewriting(&problem);
        if let Some(word) = rewriting.automaton.shortest_word() {
            // The singleton language {word} must itself be a rewriting.
            let single = Nfa::word(problem.views.sigma_e().clone(), &word);
            prop_assert!(verify_rewriting(&problem, &single).is_rewriting());
        }
    }
}

/// Theorem 2.1 (deterministic spot check): Σ_E-maximality implies
/// Σ-maximality on Example 2.1, where the two notions visibly differ.
#[test]
fn sigma_e_maximal_implies_sigma_maximal_on_example_2_1() {
    let problem = RewriteProblem::parse("a*", [("e", "a*")]).unwrap();
    let rewriting = compute_maximal_rewriting(&problem);
    // Any other rewriting's expansion is contained in the expansion of the
    // Σ_E-maximal one; test with the competitor R2 = e.
    let competitor = thompson(&regexlang::parse("e").unwrap(), problem.views.sigma_e()).unwrap();
    assert!(verify_rewriting(&problem, &competitor).is_rewriting());
    assert!(rewriter::sigma_contained(
        &competitor,
        &Nfa::from_dfa(&rewriting.automaton),
        &problem.views
    ));
}
